//! The declarative scenario specification: what to run, under which
//! coherence policy, over which fabric, how many times.
//!
//! A scenario is one JSON object, hand-written and checked strictly:
//! unknown keys, out-of-range blocks, and malformed sub-objects are errors
//! with positions (the `dsm-json` parser reports line/column). The parsed
//! form is canonical — [`ScenarioSpec::to_json`] emits a normalized
//! document whose re-parse is structurally identical, which the round-trip
//! tests and the `scenario --print-spec` flag rely on.
//!
//! ```json
//! {
//!   "name": "kv-hot",
//!   "app": {"name": "kv-zipf", "size": "small", "params": {"keys": 512}},
//!   "nodes": 16,
//!   "mode": {"kind": "fixed", "protocol": "hlrc", "block": 1024},
//!   "fabric": "faulty,seed=42,drop=10000",
//!   "check": true,
//!   "reps": 3,
//!   "seed": 1000
//! }
//! ```

use std::sync::Arc;

use dsm_core::{FabricConfig, Notify, Program, Protocol};
use dsm_json::Value;

use dsm_apps::{app_sized, AppSize, KvZipf, PageRank, RandomDrf};

/// Version stamped on every record the engine emits; bump when the JSONL
/// shapes change incompatibly. v2: repetition and aggregate records carry
/// the simulator throughput pair `sim_events` / `sim_events_per_sec`
/// (events per *virtual* second — wall clock never enters the JSONL, so
/// records stay byte-identical across hosts and job widths). v3: the
/// metric block gains the Tardis lease counters `lease_renewals`,
/// `lease_expiries` and `wts_bumps` as typed fields (zero under the other
/// protocols), and `"tardis"` is a legal mode protocol.
pub const SCHEMA: u32 = 3;

/// Legal coherence granularities (the study's four).
pub const LEGAL_BLOCKS: [usize; 4] = [64, 256, 1024, 4096];

/// Which application to run and how to shape it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppSpec {
    /// Registry name: one of the twelve kernels or a modern workload
    /// (`kv-zipf`, `pagerank`, `random-drf`).
    pub name: String,
    /// Base problem-size class the parameters default from.
    pub size: AppSize,
    /// Parameter overrides for the modern workloads, in spec order.
    /// Classic kernels accept no parameters (their shapes are the paper's).
    pub params: Vec<(String, u64)>,
}

impl AppSpec {
    fn param(&self, key: &str, default: u64) -> u64 {
        self.params
            .iter()
            .find(|(k, _)| k == key)
            .map_or(default, |(_, v)| *v)
    }

    /// Instantiate the program for one repetition. Modern workloads are
    /// seeded per repetition; the classic kernels are deterministic fixed
    /// problems and ignore the seed.
    pub fn build(&self, seed: u64) -> Result<Program, String> {
        let small = self.size == AppSize::Small;
        let known: &[&str] = match self.name.as_str() {
            "kv-zipf" => &["keys", "ops", "epochs", "theta_x100", "read_pct"],
            "pagerank" => &["vertices", "max_out", "iters"],
            "random-drf" => &["words", "phases", "locks"],
            _ => &[],
        };
        if let Some((k, _)) = self
            .params
            .iter()
            .find(|(k, _)| !known.contains(&k.as_str()))
        {
            return Err(format!(
                "app {}: unknown parameter {k:?} (known: {})",
                self.name,
                if known.is_empty() {
                    "none — classic kernels take no parameters".to_string()
                } else {
                    known.join(", ")
                }
            ));
        }
        Ok(match self.name.as_str() {
            "kv-zipf" => {
                let (keys, ops, epochs) = if small {
                    (256, 4_000, 4)
                } else {
                    (2048, 48_000, 6)
                };
                Arc::new(KvZipf::new(
                    seed,
                    self.param("keys", keys) as usize,
                    self.param("ops", ops) as usize,
                    self.param("epochs", epochs) as usize,
                    self.param("theta_x100", 99) as u32,
                    self.param("read_pct", 70) as u32,
                ))
            }
            "pagerank" => {
                let (v, m, it) = if small { (96, 4, 3) } else { (768, 8, 8) };
                Arc::new(PageRank::new(
                    seed,
                    self.param("vertices", v) as usize,
                    self.param("max_out", m) as usize,
                    self.param("iters", it) as usize,
                ))
            }
            "random-drf" => {
                let (w, ph, l) = if small { (64, 3, 2) } else { (256, 6, 4) };
                Arc::new(RandomDrf::new(
                    seed,
                    self.param("words", w) as usize,
                    self.param("phases", ph) as usize,
                    self.param("locks", l) as usize,
                ))
            }
            other => {
                return app_sized(other, self.size)
                    .ok_or_else(|| format!("unknown application: {other}"))
            }
        })
    }
}

/// Coherence policy selection for the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Mode {
    /// One (protocol, granularity) everywhere.
    Fixed {
        /// The protocol.
        protocol: Protocol,
        /// The granularity in bytes.
        block: usize,
    },
    /// Per-region overrides on top of a default combination — the regions
    /// name the program's `RegionHints`.
    Mixed {
        /// Default protocol for unnamed regions.
        protocol: Protocol,
        /// Default granularity for unnamed regions.
        block: usize,
        /// `(region, protocol, block)` overrides in spec order.
        regions: Vec<(String, Protocol, usize)>,
    },
    /// Let the adaptive planner profile the program and pin a combination
    /// per region (fresh plan every repetition, since the seed reshapes
    /// the program).
    Adaptive,
}

/// How repetition seeds are produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedSeq {
    /// Repetition `r` uses `base + r`.
    Base(u64),
    /// Explicit per-repetition seeds (length must equal `reps`).
    List(Vec<u64>),
}

impl SeedSeq {
    /// Seed of repetition `rep`.
    pub fn seed_for(&self, rep: usize) -> u64 {
        match self {
            SeedSeq::Base(b) => b + rep as u64,
            SeedSeq::List(v) => v[rep],
        }
    }
}

/// A complete parsed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reported in every output record).
    pub name: String,
    /// What to run.
    pub app: AppSpec,
    /// Cluster size.
    pub nodes: usize,
    /// Coherence policy.
    pub mode: Mode,
    /// Fabric spec in the `DSM_FABRIC` grammar (`ideal`, `contended`,
    /// `faulty[,k=v,...]`). Stored as written; validated at parse time.
    pub fabric: String,
    /// Install the race detector + invariant checker on every repetition.
    pub check: bool,
    /// Record causal spans (zero virtual-time cost; enables critical-path
    /// extraction downstream).
    pub spans: bool,
    /// Notification mechanism.
    pub notify: Notify,
    /// Repetitions.
    pub reps: usize,
    /// Seed sequence over repetitions.
    pub seeds: SeedSeq,
}

fn proto_of(v: &Value, ctx: &str) -> Result<Protocol, String> {
    v.as_str()
        .ok_or_else(|| format!("{ctx}: protocol must be a string"))?
        .parse()
        .map_err(|e| format!("{ctx}: {e}"))
}

fn block_of(v: &Value, ctx: &str) -> Result<usize, String> {
    let b = v
        .as_u64()
        .ok_or_else(|| format!("{ctx}: block must be an integer"))? as usize;
    if !LEGAL_BLOCKS.contains(&b) {
        return Err(format!(
            "{ctx}: block {b} not in the study's granularities {LEGAL_BLOCKS:?}"
        ));
    }
    Ok(b)
}

impl ScenarioSpec {
    /// Parse a scenario document; errors carry the JSON position for
    /// syntax problems and a field path for shape problems.
    pub fn parse(text: &str) -> Result<ScenarioSpec, String> {
        let v = Value::parse(text).map_err(|e| format!("scenario: {e}"))?;
        Self::from_value(&v)
    }

    /// Build a spec from a parsed JSON value (strict: unknown keys are
    /// errors so typos in hand-written plans fail loudly).
    pub fn from_value(v: &Value) -> Result<ScenarioSpec, String> {
        let Value::Obj(fields) = v else {
            return Err("scenario: document must be an object".to_string());
        };
        const KNOWN: [&str; 11] = [
            "schema", "name", "app", "nodes", "mode", "fabric", "check", "spans", "notify", "reps",
            "seed",
        ];
        for (k, _) in fields {
            if !KNOWN.contains(&k.as_str()) && k != "seeds" {
                return Err(format!("scenario: unknown key {k:?}"));
            }
        }
        if let Some(s) = v.get("schema") {
            let got = s.as_u64().unwrap_or(0) as u32;
            if got != SCHEMA {
                return Err(format!(
                    "scenario: schema {got} unsupported (expected {SCHEMA})"
                ));
            }
        }
        let name = v
            .get("name")
            .and_then(Value::as_str)
            .ok_or("scenario: missing \"name\"")?
            .to_string();

        // App: a bare string ("lu") or an object with name/size/params.
        let app = match v.get("app").ok_or("scenario: missing \"app\"")? {
            Value::Str(s) => AppSpec {
                name: s.clone(),
                size: AppSize::Small,
                params: Vec::new(),
            },
            Value::Obj(afields) => {
                for (k, _) in afields {
                    if !["name", "size", "params"].contains(&k.as_str()) {
                        return Err(format!("scenario app: unknown key {k:?}"));
                    }
                }
                let aname = v
                    .get("app")
                    .and_then(|a| a.get("name"))
                    .and_then(Value::as_str)
                    .ok_or("scenario app: missing \"name\"")?
                    .to_string();
                let size = match v
                    .get("app")
                    .and_then(|a| a.get("size"))
                    .and_then(Value::as_str)
                {
                    None | Some("small") => AppSize::Small,
                    Some("standard") => AppSize::Standard,
                    Some(other) => {
                        return Err(format!(
                            "scenario app: size must be \"small\" or \"standard\", got {other:?}"
                        ))
                    }
                };
                let mut params = Vec::new();
                if let Some(p) = v.get("app").and_then(|a| a.get("params")) {
                    let Value::Obj(pf) = p else {
                        return Err("scenario app: \"params\" must be an object".to_string());
                    };
                    for (k, pv) in pf {
                        let n = pv.as_u64().ok_or_else(|| {
                            format!("scenario app param {k:?}: must be a non-negative integer")
                        })?;
                        params.push((k.clone(), n));
                    }
                }
                AppSpec {
                    name: aname,
                    size,
                    params,
                }
            }
            _ => return Err("scenario: \"app\" must be a string or object".to_string()),
        };

        let nodes = match v.get("nodes") {
            None => 16,
            Some(n) => {
                let n = n.as_u64().ok_or("scenario: \"nodes\" must be an integer")? as usize;
                if !(1..=64).contains(&n) {
                    return Err(format!("scenario: nodes {n} out of range 1..=64"));
                }
                n
            }
        };

        let mode = match v.get("mode").ok_or("scenario: missing \"mode\"")? {
            m @ Value::Obj(mfields) => {
                for (k, _) in mfields {
                    if !["kind", "protocol", "block", "regions"].contains(&k.as_str()) {
                        return Err(format!("scenario mode: unknown key {k:?}"));
                    }
                }
                match m.get("kind").and_then(Value::as_str) {
                    Some("fixed") => Mode::Fixed {
                        protocol: proto_of(
                            m.get("protocol").ok_or("scenario mode: missing protocol")?,
                            "scenario mode",
                        )?,
                        block: block_of(
                            m.get("block").ok_or("scenario mode: missing block")?,
                            "scenario mode",
                        )?,
                    },
                    Some("mixed") => {
                        let mut regions = Vec::new();
                        for (i, r) in m
                            .get("regions")
                            .and_then(Value::as_arr)
                            .ok_or("scenario mode: mixed requires a \"regions\" array")?
                            .iter()
                            .enumerate()
                        {
                            let ctx = format!("scenario mode region {i}");
                            let rname = r
                                .get("name")
                                .and_then(Value::as_str)
                                .ok_or_else(|| format!("{ctx}: missing name"))?
                                .to_string();
                            let rp = proto_of(
                                r.get("protocol")
                                    .ok_or_else(|| format!("{ctx}: missing protocol"))?,
                                &ctx,
                            )?;
                            let rb = block_of(
                                r.get("block")
                                    .ok_or_else(|| format!("{ctx}: missing block"))?,
                                &ctx,
                            )?;
                            regions.push((rname, rp, rb));
                        }
                        if regions.is_empty() {
                            return Err("scenario mode: mixed requires at least one region".into());
                        }
                        Mode::Mixed {
                            protocol: proto_of(
                                m.get("protocol").ok_or("scenario mode: missing protocol")?,
                                "scenario mode",
                            )?,
                            block: block_of(
                                m.get("block").ok_or("scenario mode: missing block")?,
                                "scenario mode",
                            )?,
                            regions,
                        }
                    }
                    Some("adaptive") => Mode::Adaptive,
                    Some(other) => {
                        return Err(format!(
                            "scenario mode: kind must be fixed|mixed|adaptive, got {other:?}"
                        ))
                    }
                    None => return Err("scenario mode: missing \"kind\"".to_string()),
                }
            }
            _ => return Err("scenario: \"mode\" must be an object".to_string()),
        };

        let fabric = v
            .get("fabric")
            .map(|f| {
                f.as_str()
                    .map(str::to_string)
                    .ok_or("scenario: \"fabric\" must be a spec string")
            })
            .transpose()?
            .unwrap_or_else(|| "ideal".to_string());
        FabricConfig::parse(&fabric).map_err(|e| format!("scenario fabric: {e}"))?;

        let check = match v.get("check") {
            None => false,
            Some(b) => b.as_bool().ok_or("scenario: \"check\" must be a bool")?,
        };
        let spans = match v.get("spans") {
            None => false,
            Some(b) => b.as_bool().ok_or("scenario: \"spans\" must be a bool")?,
        };
        let notify = match v.get("notify") {
            None => Notify::Polling,
            Some(n) => n
                .as_str()
                .ok_or("scenario: \"notify\" must be a string")?
                .parse()
                .map_err(|e| format!("scenario: {e}"))?,
        };

        let reps = match v.get("reps") {
            None => 1,
            Some(n) => {
                let n = n.as_u64().ok_or("scenario: \"reps\" must be an integer")? as usize;
                if n < 1 {
                    return Err("scenario: reps must be >= 1".to_string());
                }
                n
            }
        };
        let seeds = match (v.get("seed"), v.get("seeds")) {
            (Some(_), Some(_)) => {
                return Err("scenario: give either \"seed\" or \"seeds\", not both".to_string())
            }
            (Some(s), None) => {
                SeedSeq::Base(s.as_u64().ok_or("scenario: \"seed\" must be an integer")?)
            }
            (None, Some(list)) => {
                let arr = list
                    .as_arr()
                    .ok_or("scenario: \"seeds\" must be an array of integers")?;
                let seeds: Option<Vec<u64>> = arr.iter().map(Value::as_u64).collect();
                let seeds = seeds.ok_or("scenario: \"seeds\" must be an array of integers")?;
                if seeds.len() != reps {
                    return Err(format!("scenario: {} seeds for {reps} reps", seeds.len()));
                }
                SeedSeq::List(seeds)
            }
            (None, None) => SeedSeq::Base(1),
        };

        Ok(ScenarioSpec {
            name,
            app,
            nodes,
            mode,
            fabric,
            check,
            spans,
            notify,
            reps,
            seeds,
        })
    }

    /// Canonical JSON form: parsing the emitted document yields an equal
    /// spec, and emitting again yields the identical document.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("schema", SCHEMA);
        v.set("name", self.name.as_str());
        let mut app = Value::obj();
        app.set("name", self.app.name.as_str());
        app.set(
            "size",
            if self.app.size == AppSize::Small {
                "small"
            } else {
                "standard"
            },
        );
        if !self.app.params.is_empty() {
            let mut p = Value::obj();
            for (k, val) in &self.app.params {
                p.set(k, *val);
            }
            app.set("params", p);
        }
        v.set("app", app);
        v.set("nodes", self.nodes);
        let mut mode = Value::obj();
        match &self.mode {
            Mode::Fixed { protocol, block } => {
                mode.set("kind", "fixed");
                mode.set("protocol", protocol.name().to_lowercase());
                mode.set("block", *block);
            }
            Mode::Mixed {
                protocol,
                block,
                regions,
            } => {
                mode.set("kind", "mixed");
                mode.set("protocol", protocol.name().to_lowercase());
                mode.set("block", *block);
                let rs: Vec<Value> = regions
                    .iter()
                    .map(|(n, p, b)| {
                        let mut r = Value::obj();
                        r.set("name", n.as_str());
                        r.set("protocol", p.name().to_lowercase());
                        r.set("block", *b);
                        r
                    })
                    .collect();
                mode.set("regions", Value::Arr(rs));
            }
            Mode::Adaptive => {
                mode.set("kind", "adaptive");
            }
        }
        v.set("mode", mode);
        v.set("fabric", self.fabric.as_str());
        v.set("check", self.check);
        v.set("spans", self.spans);
        v.set("notify", self.notify.name());
        v.set("reps", self.reps);
        match &self.seeds {
            SeedSeq::Base(b) => {
                v.set("seed", *b);
            }
            SeedSeq::List(list) => {
                v.set(
                    "seeds",
                    Value::Arr(list.iter().map(|&s| Value::from(s)).collect()),
                );
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
        "name": "smoke",
        "app": "lu",
        "mode": {"kind": "fixed", "protocol": "hlrc", "block": 1024}
    }"#;

    #[test]
    fn minimal_spec_defaults() {
        let s = ScenarioSpec::parse(MINIMAL).unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.app.name, "lu");
        assert_eq!(s.app.size, AppSize::Small);
        assert_eq!(s.nodes, 16);
        assert_eq!(s.fabric, "ideal");
        assert!(!s.check);
        assert_eq!(s.reps, 1);
        assert_eq!(s.seeds.seed_for(0), 1);
    }

    #[test]
    fn round_trip_is_identity() {
        let full = r#"{
            "name": "kv-chaos",
            "app": {"name": "kv-zipf", "size": "small",
                    "params": {"keys": 512, "theta_x100": 120}},
            "nodes": 8,
            "mode": {"kind": "mixed", "protocol": "hlrc", "block": 4096,
                     "regions": [{"name": "values", "protocol": "sc", "block": 256}]},
            "fabric": "faulty,seed=42,drop=10000",
            "check": true,
            "spans": false,
            "reps": 3,
            "seeds": [5, 6, 9]
        }"#;
        let a = ScenarioSpec::parse(full).unwrap();
        let emitted = a.to_json().to_string();
        let b = ScenarioSpec::parse(&emitted).unwrap();
        assert_eq!(a, b);
        // Emit is canonical: a second emit is byte-identical.
        assert_eq!(emitted, b.to_json().to_string());
    }

    #[test]
    fn strictness_catches_typos() {
        for (doc, needle) in [
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"fixed","protocol":"hlrc","block":1024},"bogus":1}"#,
                "unknown key",
            ),
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"fixed","protocol":"hlrc","block":512}}"#,
                "granularities",
            ),
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"fixed","protocol":"mesi","block":1024}}"#,
                "unknown protocol",
            ),
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"mixed","protocol":"sc","block":64,"regions":[]}}"#,
                "at least one region",
            ),
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"fixed","protocol":"sc","block":64},"fabric":"warp"}"#,
                "fabric",
            ),
            (
                r#"{"name":"x","app":"lu","mode":{"kind":"fixed","protocol":"sc","block":64},"reps":2,"seeds":[1]}"#,
                "seeds for 2 reps",
            ),
            (
                r#"{"name":"x","app":{"name":"kv-zipf","params":{"noexist":3}},"mode":{"kind":"fixed","protocol":"sc","block":64}}"#,
                "",
            ),
        ] {
            let r = ScenarioSpec::parse(doc);
            match r {
                Err(e) => assert!(e.contains(needle), "{doc}: {e} (wanted {needle:?})"),
                Ok(s) => {
                    // Parameter typos surface at build time.
                    let Err(e) = s.app.build(1) else {
                        panic!("{doc}: build succeeded with a bogus parameter");
                    };
                    assert!(e.contains("unknown parameter"), "{e}");
                }
            }
        }
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let e = ScenarioSpec::parse("{\n \"name\": oops\n}").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
    }

    #[test]
    fn seed_sequences() {
        let s = SeedSeq::Base(100);
        assert_eq!((s.seed_for(0), s.seed_for(2)), (100, 102));
        let l = SeedSeq::List(vec![7, 9]);
        assert_eq!((l.seed_for(0), l.seed_for(1)), (7, 9));
    }

    #[test]
    fn builds_every_registered_app() {
        for name in dsm_apps::all_app_names()
            .into_iter()
            .chain(dsm_apps::modern_app_names())
        {
            let spec = AppSpec {
                name: name.to_string(),
                size: AppSize::Small,
                params: Vec::new(),
            };
            let p = spec.build(3).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(p.name(), name);
        }
        assert!(AppSpec {
            name: "nope".into(),
            size: AppSize::Small,
            params: Vec::new()
        }
        .build(1)
        .is_err());
    }
}
