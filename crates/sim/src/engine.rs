//! The discrete-event engine: event queue, node scheduling, thread hand-off.
//!
//! Two execution modes share one event queue and one set of node threads:
//!
//! * **Serial** ([`SimPar::serial`], the default): exactly one logical entity
//!   runs at any instant; whichever node thread is active drives the event
//!   loop and hands control over via condvars.
//! * **Windowed / conservative PDES** ([`SimPar::windowed`], `threads > 1`):
//!   the caller's thread becomes a *committer* that pops and executes every
//!   event in exact global `(time, seq)` order — so all world mutations
//!   happen in the same order as serial execution and results are
//!   bit-identical by construction — while up to `threads - 1` node threads
//!   run their *leading compute* (thread-local application work between DSM
//!   operations) speculatively ahead of their committed resume. The
//!   conservative lookahead window (derived from the fabric's minimum
//!   inter-node latency) bounds which parked nodes are woken early, and
//!   cross-node events produced inside a window are staged on a separate
//!   wheel and merged back at window edges in `(time, seq)` order.

use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::queue::SplitQueue;
use crate::rng::fold64;
use crate::time::Time;
use crate::NodeId;

/// Panic payload used when a model-checker hook abandons an execution
/// mid-run ([`McHook::choose`] returned `None`). The exploration driver
/// catches this with `catch_unwind` and treats the run as pruned, not
/// failed.
pub const MC_PRUNE: &str = "dsm-mc: schedule pruned";

/// One co-enabled event offered to a model-checker hook at a commit point.
pub struct McChoice<'a, M> {
    /// Stable event identity: the global queue sequence number assigned at
    /// push time. Identical across replays of the same decision prefix
    /// (the engine is deterministic), so hooks can use it to recognize an
    /// event across sibling executions.
    pub key: u64,
    /// The event itself.
    pub event: McEvent<'a, M>,
}

/// The two kinds of schedulable event, as seen by a model-checker hook.
pub enum McEvent<'a, M> {
    /// A node resumes from its compute segment or a wake.
    Resume {
        /// The resuming node.
        node: NodeId,
    },
    /// A message delivery.
    Msg {
        /// The destination node.
        to: NodeId,
        /// The message (borrowed; it is still queued).
        msg: &'a M,
    },
}

/// A controlled scheduler plugged into the serial engine by
/// [`run_cluster_mc`]: every commit point where more than zero events are
/// co-enabled at the head virtual time becomes an explicit choice.
///
/// The hook is called at *every* commit point, singletons included, so it
/// can maintain replay position, sleep sets, and step bounds uniformly.
/// Returning `None` abandons the execution: the engine poisons itself and
/// panics with [`MC_PRUNE`], which the exploration driver catches.
pub trait McHook<W: World>: Send {
    /// Pick which of `choices` (all tied at virtual time `at`) commits.
    ///
    /// `engine_hash` folds the scheduler-visible state (head time, node
    /// statuses and generations, and the queue multiset including the
    /// offered choices); combined with a world fingerprint it identifies
    /// the global state at this commit point.
    fn choose(
        &mut self,
        world: &W,
        engine_hash: u64,
        at: Time,
        choices: &[McChoice<'_, W::Msg>],
    ) -> Option<usize>;
}

/// Content hash of a queued message addressed at a node, used to fingerprint
/// the pending-event multiset in model-checked runs. Must be a pure function
/// of the message so replays fingerprint identically.
pub type McMsgHash<M> = Box<dyn Fn(NodeId, &M) -> u64 + Send>;

/// Everything [`run_cluster_mc`] installs on the engine: the controlling
/// hook plus a content hash for queued messages (feeding the queue-multiset
/// part of `engine_hash`).
pub struct McInstall<W: World> {
    /// The controlled scheduler.
    pub hook: Box<dyn McHook<W>>,
    /// Content hash of a queued message addressed at a node.
    pub msg_hash: McMsgHash<W::Msg>,
}

/// Execution mode for [`run_cluster_with`]: worker-thread cap plus the
/// conservative lookahead bound for windowed execution.
#[derive(Debug, Clone, Copy)]
pub struct SimPar {
    /// Concurrency cap. 1 = fully serialized (the classic engine); n > 1
    /// lets up to n-1 node threads run speculative leading compute while the
    /// committer thread executes world phases in global order.
    pub threads: usize,
    /// Conservative lookahead L in ns: an event produced for *another* node
    /// at time t never takes effect before t + L. Derived from the minimum
    /// one-way network latency (the Table-1 Myrinet floor, ~20 µs one-way);
    /// ignored in serial mode.
    pub lookahead_ns: Time,
}

impl SimPar {
    /// Fully serialized execution (the default).
    pub fn serial() -> Self {
        SimPar {
            threads: 1,
            lookahead_ns: 0,
        }
    }

    /// Windowed execution with up to `threads` concurrent threads and the
    /// given lookahead. `threads <= 1` degrades to the serial engine.
    pub fn windowed(threads: usize, lookahead_ns: Time) -> Self {
        SimPar {
            threads: threads.max(1),
            lookahead_ns,
        }
    }

    /// Resolve the `DSM_SIM_PAR` environment knob into a thread count:
    /// unset or empty → 1 (serial); `auto` or `0` → one thread per available
    /// core; an integer N → N.
    pub fn threads_from_env() -> usize {
        match std::env::var("DSM_SIM_PAR") {
            Err(_) => 1,
            Ok(v) => {
                let v = v.trim();
                if v.is_empty() {
                    1
                } else if v.eq_ignore_ascii_case("auto") || v == "0" {
                    std::thread::available_parallelism().map_or(1, |p| p.get())
                } else {
                    v.parse().unwrap_or_else(|_| {
                        panic!("DSM_SIM_PAR must be a thread count, `auto`, or unset (got {v:?})")
                    })
                }
            }
        }
    }
}

/// Shared mutable state plugged into the engine: the protocol world.
///
/// The engine is generic over the world so that the protocol layer can define
/// its own message type and delivery semantics. `deliver` is invoked exactly
/// once per posted message, at the message's scheduled arrival time, with a
/// [`Sched`] handle for posting follow-up messages, waking blocked nodes, or
/// charging occupancy delays to busy nodes.
pub trait World: Send + 'static {
    /// Message type routed through the event queue.
    type Msg: Send + 'static;

    /// Handle a message arriving at node `to` at the current virtual time.
    fn deliver(&mut self, sched: &mut Sched<Self::Msg>, to: NodeId, msg: Self::Msg);

    /// Observe a node advancing its local clock over `[from, to)` (compute
    /// or local protocol work). Called from [`NodeCtx::advance`] before the
    /// segment is scheduled; occupancy charged into the segment later via
    /// [`Sched::delay`] is not included. Default: no-op.
    fn on_advance(&mut self, _node: NodeId, _from: Time, _to: Time) {}
}

/// Scheduling status of a node thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Currently executing (at most one node at a time).
    Running,
    /// Will resume at the given virtual time (it is computing until then).
    Ready { at: Time },
    /// Parked until a handler calls [`Sched::wake`].
    Blocked,
    /// Node body returned.
    Done,
}

enum EventKind<M> {
    /// Hand control back to a node. `gen` guards against stale entries left
    /// in the queue after the node's resume time was pushed back.
    Resume { node: NodeId, gen: u64 },
    /// Deliver a message to the world, addressed at a node.
    Msg { to: NodeId, msg: M },
}

struct NodeSlot {
    status: Status,
    /// Generation of the valid Resume event for this node.
    gen: u64,
    /// A wake that arrived before the node blocked (its completion message
    /// is "sitting in the receive queue"); consumed by the next block().
    pending_wake: Option<Time>,
}

/// Event queue plus node scheduling state. Exposed to message handlers and
/// node contexts as [`Sched`].
pub struct SchedInner<M> {
    now: Time,
    queue: SplitQueue<EventKind<M>>,
    nodes: Vec<NodeSlot>,
    done_count: usize,
    /// Events popped and processed (resumes, stale resumes, deliveries) —
    /// the simulator's native unit of work, deterministic per run.
    events: u64,
    /// Windowed mode only: the node at which the currently executing unit
    /// (message handler or node segment) runs. Pushes addressed at a
    /// *different* node are cross-node traffic and get staged until the next
    /// window edge; `None` (startup, between units) stages everything.
    /// Model-checked runs reuse it to assert handler footprints (a handler
    /// may only wake/delay its own delivery target).
    exec: Option<NodeId>,
    /// True when running under the windowed (PDES) committer.
    windowed: bool,
    /// Model-checked runs only: content hash for queued messages. Doubles as
    /// the "mc mode" flag on the scheduler side.
    mc_msg_hash: Option<McMsgHash<M>>,
    /// Model-checked runs only: XOR of [`SchedInner::mc_event_hash`] over
    /// every event currently in the queue — an incremental, order-independent
    /// fingerprint of the pending-event multiset.
    queue_hash: u64,
}

/// Handle given to [`World::deliver`] and [`NodeCtx::world`] closures for
/// interacting with the event queue.
pub type Sched<M> = SchedInner<M>;

impl<M> SchedInner<M> {
    /// Standalone scheduler for unit-testing message handlers outside the
    /// engine: events accumulate in the heap and can be drained with
    /// [`SchedInner::take_events`]; nodes start `Ready` so wakes on them
    /// are recorded as pending.
    pub fn for_testing(n: usize) -> Self {
        let mut s = Self::new(n);
        for node in 0..n {
            s.nodes[node].status = Status::Blocked;
        }
        s
    }

    /// Test helper: pop every queued event, returning `(time, to, msg)` for
    /// messages and `None` payloads for resumes.
    pub fn take_events(&mut self) -> Vec<(Time, NodeId, Option<M>)> {
        let mut out = Vec::new();
        while let Some((at, _, kind)) = self.queue.pop() {
            match kind {
                EventKind::Msg { to, msg } => out.push((at, to, Some(msg))),
                EventKind::Resume { node, .. } => out.push((at, node, None)),
            }
        }
        out
    }

    /// Test helper: advance the notion of "now" directly.
    pub fn set_now_for_testing(&mut self, t: Time) {
        debug_assert!(t >= self.now);
        self.now = t;
    }

    fn new(n: usize) -> Self {
        SchedInner {
            now: 0,
            queue: SplitQueue::new(n),
            nodes: (0..n)
                .map(|_| NodeSlot {
                    status: Status::Blocked, // set properly at start
                    gen: 0,
                    pending_wake: None,
                })
                .collect(),
            done_count: 0,
            events: 0,
            exec: None,
            windowed: false,
            mc_msg_hash: None,
            queue_hash: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of simulated nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Total events processed so far (deterministic for a given program).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// Seq-independent fingerprint of one queued event (model-checked runs):
    /// replays push the same events in potentially different seq order, so
    /// the multiset hash must not depend on insertion order.
    fn mc_event_hash(&self, at: Time, kind: &EventKind<M>) -> u64 {
        match kind {
            EventKind::Resume { node, gen } => fold64(fold64(fold64(1, *node as u64), *gen), at),
            EventKind::Msg { to, msg } => {
                let h = (self.mc_msg_hash.as_ref().expect("mc msg hasher"))(*to, msg);
                fold64(fold64(fold64(2, *to as u64), h), at)
            }
        }
    }

    fn push(&mut self, at: Time, kind: EventKind<M>) {
        if self.mc_msg_hash.is_some() {
            let h = self.mc_event_hash(at, &kind);
            self.queue_hash ^= h;
        }
        let target = match &kind {
            EventKind::Msg { to, .. } => *to,
            EventKind::Resume { node, .. } => *node,
        };
        // In windowed mode, events addressed at a node other than the one
        // currently executing are cross-node traffic: the lookahead bound
        // guarantees they land at or past the window edge, so they are
        // staged and merged at the edge. Self-posts (deferred services,
        // retransmission timers, wakes) can land inside the window and go
        // straight into the target's wheel.
        let cross = self.windowed && self.exec != Some(target);
        self.queue.push(target, at, kind, cross);
    }

    /// Pop the next event, counting it as processed simulator work.
    fn next_event(&mut self) -> Option<(Time, EventKind<M>)> {
        let ev = self.queue.pop().map(|(at, _, kind)| (at, kind));
        if ev.is_some() {
            self.events += 1;
        }
        ev
    }

    /// Post a message for delivery to node `to` at virtual time `at`.
    ///
    /// `at` is clamped to the current time (messages cannot arrive in the
    /// past).
    pub fn post(&mut self, to: NodeId, at: Time, msg: M) {
        let at = at.max(self.now);
        self.push(at, EventKind::Msg { to, msg });
    }

    /// Wake a blocked node so that it resumes at time `at`.
    ///
    /// Panics if the node is not blocked: waking a computing or finished node
    /// indicates a protocol bug.
    pub fn wake(&mut self, node: NodeId, at: Time) {
        // Model-checked runs assert the footprint the DPOR layer relies on:
        // a message handler only ever wakes its own delivery target.
        debug_assert!(
            self.mc_msg_hash.is_none() || self.exec.is_none() || self.exec == Some(node),
            "mc: handler at {:?} woke node {node}",
            self.exec
        );
        let at = at.max(self.now);
        let slot = &mut self.nodes[node];
        match slot.status {
            Status::Blocked => {
                slot.status = Status::Ready { at };
                slot.gen += 1;
                let gen = slot.gen;
                self.push(at, EventKind::Resume { node, gen });
            }
            Status::Ready { .. } | Status::Running => {
                // The node has not blocked yet (e.g. it is still charging
                // local time before parking): remember the wake, consumed by
                // its next block().
                let w = slot.pending_wake.get_or_insert(at);
                *w = (*w).max(at);
            }
            Status::Done => panic!("wake({node}) called on a finished node"),
        }
    }

    /// Push back the resume time of a computing node to at least `until`,
    /// modeling occupancy stolen from it (e.g. servicing a remote protocol
    /// request). No-op for blocked or finished nodes, or if the node already
    /// resumes later than `until`.
    pub fn delay(&mut self, node: NodeId, until: Time) {
        debug_assert!(
            self.mc_msg_hash.is_none() || self.exec.is_none() || self.exec == Some(node),
            "mc: handler at {:?} delayed node {node}",
            self.exec
        );
        let until = until.max(self.now);
        let slot = &mut self.nodes[node];
        if let Status::Ready { at } = slot.status {
            if at < until {
                slot.status = Status::Ready { at: until };
                slot.gen += 1;
                let gen = slot.gen;
                self.push(until, EventKind::Resume { node, gen });
            }
        }
    }

    /// True if the node is parked waiting for a wake (so it can service an
    /// incoming request immediately: it is spinning on message arrival).
    pub fn is_blocked(&self, node: NodeId) -> bool {
        self.nodes[node].status == Status::Blocked
    }

    /// The time at which the node becomes available to service an
    /// asynchronous request: now if it is blocked (it polls while waiting) or
    /// done, otherwise the end of its current compute segment is irrelevant —
    /// with polling it services at the next backedge, so availability is also
    /// ~now. This helper returns the node's scheduled resume time for models
    /// that want it.
    pub fn resume_at(&self, node: NodeId) -> Option<Time> {
        match self.nodes[node].status {
            Status::Ready { at } => Some(at),
            _ => None,
        }
    }
}

/// What a node thread is doing, from the committer's point of view
/// (windowed mode only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TMode {
    /// Not yet started (waiting for its first resume).
    Fresh,
    /// Parked between segments, waiting for a grant.
    Parked,
    /// Running leading compute speculatively ahead of its committed resume;
    /// it will synchronize at its next world interaction.
    Spec,
    /// Holds the turn: its segment is the one being committed, and it has
    /// exclusive access to the world until the segment ends.
    Turn,
}

/// Committer-side scheduling state for windowed execution.
struct ParDriver {
    tmode: Vec<TMode>,
    /// Node threads currently running speculatively.
    spec_active: usize,
    /// Cap on concurrent speculative threads (`threads - 1`).
    spec_slots: usize,
    /// Set by a node when the committed segment ends (advance/block/finish);
    /// the committer waits on `commit_cv` for it.
    seg_done: bool,
}

struct SimState<W: World> {
    sched: SchedInner<W::Msg>,
    /// Taken out while a handler runs so `deliver` can borrow world and
    /// scheduler simultaneously.
    world: Option<W>,
    /// Set if a node thread panicked; everyone else bails out.
    poisoned: bool,
    /// Windowed-mode driver state (unused in serial mode).
    par: ParDriver,
    /// Model-checker hook controlling every commit point (serial mode only).
    mc: Option<Box<dyn McHook<W>>>,
}

struct Shared<W: World> {
    state: Mutex<SimState<W>>,
    /// One condvar per node for hand-off, plus one for run completion.
    node_cvs: Vec<Condvar>,
    done_cv: Condvar,
    /// Windowed mode: the committer waits here for segment completion.
    commit_cv: Condvar,
}

/// A node's program: one closure per simulated node.
pub type NodeBody<W> = Box<dyn FnOnce(&mut NodeCtx<W>) + Send>;

/// Per-node handle passed to each node body closure.
///
/// All methods lock the engine internally; node bodies hold no lock between
/// DSM operations.
pub struct NodeCtx<W: World> {
    shared: Arc<Shared<W>>,
    node: NodeId,
    /// True when running under the windowed committer.
    par: bool,
    /// True while this thread runs speculative leading compute: it must
    /// synchronize with its committed resume before touching the world.
    /// (A `Cell` because it changes under methods that return borrows of
    /// `shared`; the context is only ever used by its own thread.)
    spec: std::cell::Cell<bool>,
}

impl<W: World> NodeCtx<W> {
    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Number of nodes in the cluster.
    pub fn num_nodes(&self) -> usize {
        self.shared.node_cvs.len()
    }

    /// Current virtual time.
    ///
    /// Under windowed execution this synchronizes a speculative thread with
    /// its committed resume first, so the observed time is exactly the one
    /// serial execution would see.
    pub fn now(&self) -> Time {
        self.lock_synced().sched.now
    }

    fn lock(&self) -> MutexGuard<'_, SimState<W>> {
        match self.shared.state.lock() {
            Ok(g) => {
                if g.poisoned {
                    panic!("simulation aborted: another node panicked");
                }
                g
            }
            Err(_) => panic!("simulation poisoned by a panicking node"),
        }
    }

    /// Lock the engine, first waiting out any speculation: if this thread
    /// ran ahead of its committed resume, park until the committer grants
    /// the turn. On return the node holds the turn (windowed mode) and the
    /// world is at exactly the state serial execution would present.
    fn lock_synced(&self) -> MutexGuard<'_, SimState<W>> {
        let mut g = self.lock();
        if self.spec.get() {
            g.par.spec_active -= 1;
            self.spec.set(false);
            while g.par.tmode[self.node] != TMode::Turn {
                g = self.shared.node_cvs[self.node]
                    .wait(g)
                    .unwrap_or_else(|_| panic!("simulation poisoned"));
                if g.poisoned {
                    panic!("simulation aborted: another node panicked");
                }
            }
        } else if self.par {
            debug_assert_eq!(g.par.tmode[self.node], TMode::Turn);
        }
        g
    }

    /// End the committed segment (windowed mode): release the turn, signal
    /// the committer, and either continue speculatively (when allowed and a
    /// slot is free) or park until the next grant.
    fn end_segment(&self, mut g: MutexGuard<'_, SimState<W>>, can_spec: bool) {
        let me = self.node;
        debug_assert_eq!(g.par.tmode[me], TMode::Turn);
        g.par.tmode[me] = TMode::Parked;
        g.par.seg_done = true;
        g.sched.exec = None;
        self.shared.commit_cv.notify_all();
        if can_spec && g.par.spec_active < g.par.spec_slots {
            // Keep computing past the yield point: leading compute up to
            // the next world interaction is thread-local, so running it
            // early cannot change any observable outcome.
            g.par.spec_active += 1;
            g.par.tmode[me] = TMode::Spec;
            self.spec.set(true);
            return;
        }
        loop {
            g = self.shared.node_cvs[me]
                .wait(g)
                .unwrap_or_else(|_| panic!("simulation poisoned"));
            if g.poisoned {
                panic!("simulation aborted: another node panicked");
            }
            match g.par.tmode[me] {
                TMode::Turn => return,
                TMode::Spec => {
                    self.spec.set(true);
                    return;
                }
                _ => {}
            }
        }
    }

    /// Advance this node's virtual clock by `dt` nanoseconds of computation.
    ///
    /// Events that fall inside the interval are processed; message handlers
    /// may charge extra occupancy to this node via [`Sched::delay`], pushing
    /// the effective resume time further out.
    pub fn advance(&mut self, dt: Time) {
        let mut g = self.lock_synced();
        let at = g.sched.now + dt;
        if dt > 0 {
            let from = g.sched.now;
            let world = g.world.as_mut().expect("world re-entrancy");
            world.on_advance(self.node, from, at);
        }
        let slot = &mut g.sched.nodes[self.node];
        debug_assert_eq!(slot.status, Status::Running);
        slot.status = Status::Ready { at };
        slot.gen += 1;
        let gen = slot.gen;
        g.sched.push(
            at,
            EventKind::Resume {
                node: self.node,
                gen,
            },
        );
        if self.par {
            // The compute up to the next world interaction is speculation-
            // safe: continue if a slot is free, else park for a grant.
            self.end_segment(g, true);
        } else {
            drive_serial(&self.shared, g, Some(self.node));
        }
    }

    /// Park this node until a message handler calls [`Sched::wake`] for it.
    pub fn block(&mut self) {
        let mut g = self.lock_synced();
        let now = g.sched.now;
        let slot = &mut g.sched.nodes[self.node];
        debug_assert_eq!(slot.status, Status::Running);
        if let Some(at) = slot.pending_wake.take() {
            // The completion we were about to wait for already arrived.
            let at = at.max(now);
            slot.status = Status::Ready { at };
            slot.gen += 1;
            let gen = slot.gen;
            g.sched.push(
                at,
                EventKind::Resume {
                    node: self.node,
                    gen,
                },
            );
        } else {
            slot.status = Status::Blocked;
        }
        if self.par {
            // No speculation past a block: until the wake commits there is
            // nothing useful to run ahead (the continuation immediately
            // reads the clock), and the committer's pre-dispatch will wake
            // us early once our resume is in the window.
            self.end_segment(g, false);
        } else {
            drive_serial(&self.shared, g, Some(self.node));
        }
    }

    /// Run `f` with exclusive access to the world and the scheduler.
    ///
    /// This is how node-side protocol code mutates shared protocol state and
    /// posts messages. The closure runs at the node's current virtual time.
    pub fn world<R>(&mut self, f: impl FnOnce(&mut W, &mut Sched<W::Msg>) -> R) -> R {
        let mut g = self.lock_synced();
        let mut world = g.world.take().expect("world re-entrancy");
        let r = f(&mut world, &mut g.sched);
        g.world = Some(world);
        r
    }

    /// Mark this node finished and keep the event loop alive for others
    /// (serial mode).
    fn finish(&self) {
        let mut g = self.lock();
        let slot = &mut g.sched.nodes[self.node];
        debug_assert_eq!(slot.status, Status::Running);
        slot.status = Status::Done;
        g.sched.done_count += 1;
        if g.sched.done_count == g.sched.nodes.len() {
            // Drain in-flight messages so their effects (stats, traffic) are
            // accounted for even when every node body has returned.
            loop {
                let (at, kind) = match mc_next_event(&mut g) {
                    McPop::Ev(at, kind) => (at, kind),
                    McPop::Empty => break,
                    McPop::Prune => {
                        g.poisoned = true;
                        for cv in &self.shared.node_cvs {
                            cv.notify_all();
                        }
                        self.shared.done_cv.notify_all();
                        panic!("{MC_PRUNE}");
                    }
                };
                if let EventKind::Msg { to, msg } = kind {
                    g.sched.now = at;
                    let mc_on = g.sched.mc_msg_hash.is_some();
                    if mc_on {
                        g.sched.exec = Some(to);
                    }
                    let mut world = g.world.take().expect("world re-entrancy");
                    world.deliver(&mut g.sched, to, msg);
                    g.world = Some(world);
                    if mc_on {
                        g.sched.exec = None;
                    }
                }
            }
            self.shared.done_cv.notify_all();
            return;
        }
        // Drive until control is handed to another node (or everything is
        // drained because the remaining nodes are all done).
        drive_serial(&self.shared, g, None);
    }

    /// Mark this node finished (windowed mode): the final segment ends here;
    /// the committer keeps the event loop alive.
    fn finish_par(&self) {
        let mut g = self.lock_synced();
        let slot = &mut g.sched.nodes[self.node];
        debug_assert_eq!(slot.status, Status::Running);
        slot.status = Status::Done;
        g.sched.done_count += 1;
        debug_assert_eq!(g.par.tmode[self.node], TMode::Turn);
        g.par.tmode[self.node] = TMode::Parked;
        g.par.seg_done = true;
        g.sched.exec = None;
        self.shared.commit_cv.notify_all();
    }
}

/// Result of a model-checked pop: an event to execute, queue exhausted, or
/// "abandon this execution" (the hook pruned the schedule).
enum McPop<M> {
    Ev(Time, EventKind<M>),
    Empty,
    Prune,
}

/// Pop the next event, routing the choice through the model-checker hook
/// when one is installed: gather every event tied at the head virtual time,
/// drop stale resumes (they are not real choices — the plain pop skips them
/// identically), and let the hook pick which one commits. Unchosen events
/// are restored with their original `(time, seq)` keys, so the order among
/// them is untouched.
fn mc_next_event<W: World>(st: &mut SimState<W>) -> McPop<W::Msg> {
    if st.mc.is_none() {
        return match st.sched.next_event() {
            Some((at, kind)) => McPop::Ev(at, kind),
            None => McPop::Empty,
        };
    }
    loop {
        let Some((head, _)) = st.sched.queue.next_key() else {
            return McPop::Empty;
        };
        let mut tied: Vec<(Time, u64, NodeId, EventKind<W::Msg>)> = Vec::new();
        while st.sched.queue.next_key().is_some_and(|(t, _)| t == head) {
            let (at, key, node, kind) = st.sched.queue.pop_keyed().expect("head implies an event");
            if let EventKind::Resume { node: rn, gen } = &kind {
                if st.sched.nodes[*rn].gen != *gen {
                    // Superseded by a later delay/wake: skip it, counting it
                    // exactly as the plain loop would.
                    st.sched.events += 1;
                    let h = st.sched.mc_event_hash(at, &kind);
                    st.sched.queue_hash ^= h;
                    continue;
                }
            }
            tied.push((at, key, node, kind));
        }
        if tied.is_empty() {
            continue; // the whole tie was stale; move to the next head time
        }
        // Scheduler-visible fingerprint: head time, node slots, and the
        // pending-event multiset (the tied events above are still counted
        // in `queue_hash` — they are logically queued until one commits).
        let mut eh = fold64(0, head);
        for s in &st.sched.nodes {
            let (tag, t) = match s.status {
                Status::Running => (0u64, 0),
                Status::Ready { at } => (1, at),
                Status::Blocked => (2, 0),
                Status::Done => (3, 0),
            };
            eh = fold64(eh, tag);
            eh = fold64(eh, t);
            eh = fold64(eh, s.gen);
            eh = fold64(eh, s.pending_wake.map_or(u64::MAX, |w| w));
        }
        eh = fold64(eh, st.sched.queue_hash);
        let choices: Vec<McChoice<'_, W::Msg>> = tied
            .iter()
            .map(|&(_, key, _, ref kind)| McChoice {
                key,
                event: match kind {
                    EventKind::Resume { node, .. } => McEvent::Resume { node: *node },
                    EventKind::Msg { to, msg } => McEvent::Msg { to: *to, msg },
                },
            })
            .collect();
        let world = st.world.as_ref().expect("world re-entrancy");
        let pick = st
            .mc
            .as_mut()
            .expect("mc hook")
            .choose(world, eh, head, &choices);
        drop(choices);
        let Some(pick) = pick else {
            return McPop::Prune;
        };
        assert!(pick < tied.len(), "mc hook chose {pick} of {}", tied.len());
        let mut chosen = None;
        for (i, (at, key, node, kind)) in tied.into_iter().enumerate() {
            if i == pick {
                chosen = Some((at, kind));
            } else {
                st.sched.queue.unpop(node, at, key, kind);
            }
        }
        let (at, kind) = chosen.expect("pick is in range");
        let h = st.sched.mc_event_hash(at, &kind);
        st.sched.queue_hash ^= h;
        st.sched.events += 1;
        return McPop::Ev(at, kind);
    }
}

/// Serial event loop: pop and execute events in global `(time, seq)` order
/// until `me`'s own resume commits (`Some`), or until control is handed to
/// another node's thread (`None` — the startup kick-off and finishing nodes
/// hand off and return).
fn drive_serial<W: World>(
    shared: &Shared<W>,
    mut g: MutexGuard<'_, SimState<W>>,
    me: Option<NodeId>,
) {
    loop {
        let (at, kind) = match mc_next_event(&mut g) {
            McPop::Ev(at, kind) => (at, kind),
            McPop::Prune => {
                g.poisoned = true;
                for cv in &shared.node_cvs {
                    cv.notify_all();
                }
                shared.done_cv.notify_all();
                panic!("{MC_PRUNE}");
            }
            McPop::Empty => {
                // Nothing left to do. A driving node is itself blocked or
                // ready, so an empty queue is a deadlock; a finishing node
                // (`me == None`) returns cleanly when every other node is
                // done too.
                let any_blocked = g.sched.nodes.iter().any(|s| s.status == Status::Blocked);
                if me.is_none() && !any_blocked {
                    return;
                }
                let statuses: Vec<_> = g.sched.nodes.iter().map(|s| s.status).collect();
                g.poisoned = true;
                for cv in &shared.node_cvs {
                    cv.notify_all();
                }
                shared.done_cv.notify_all();
                panic!("simulation deadlock: event queue empty, node states {statuses:?}");
            }
        };
        debug_assert!(at >= g.sched.now);
        match kind {
            EventKind::Msg { to, msg } => {
                g.sched.now = at;
                let mc_on = g.sched.mc_msg_hash.is_some();
                if mc_on {
                    g.sched.exec = Some(to); // footprint assert in wake/delay
                }
                let mut world = g.world.take().expect("world re-entrancy");
                world.deliver(&mut g.sched, to, msg);
                g.world = Some(world);
                if mc_on {
                    g.sched.exec = None;
                }
            }
            EventKind::Resume { node, gen } => {
                if g.sched.nodes[node].gen != gen {
                    continue; // superseded by a later delay/wake
                }
                match g.sched.nodes[node].status {
                    Status::Ready { at: r } => debug_assert_eq!(r, at),
                    other => panic!("resume for node {node} in state {other:?}"),
                }
                g.sched.now = at;
                g.sched.nodes[node].status = Status::Running;
                if me == Some(node) {
                    return;
                }
                // Hand off to the resumed node's thread.
                shared.node_cvs[node].notify_one();
                let Some(me) = me else {
                    return;
                };
                // Park until a future driver resumes us.
                loop {
                    g = shared.node_cvs[me]
                        .wait(g)
                        .unwrap_or_else(|_| panic!("simulation poisoned"));
                    if g.poisoned {
                        panic!("simulation aborted: another node panicked");
                    }
                    if g.sched.nodes[me].status == Status::Running {
                        return;
                    }
                }
            }
        }
    }
}

/// The windowed-mode committer loop: runs on the caller's thread, executing
/// every event in exact global `(time, seq)` order. Message handlers run
/// inline; node segments are granted to their threads one at a time (the
/// "turn"), so every world phase happens in exactly the serial order —
/// results are bit-identical to serial execution by construction. Ahead of
/// the commit point, parked nodes whose resume falls inside the lookahead
/// window are woken to run leading compute speculatively.
fn drive_windowed<W: World>(shared: &Arc<Shared<W>>, n: usize, lookahead: Time) {
    let lookahead = lookahead.max(1);
    let mut g = match shared.state.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    loop {
        if g.poisoned {
            panic!("simulation aborted: a node panicked");
        }
        // Window maintenance: once the head reaches the window edge, merge
        // staged cross-node events back (in (time, seq) order) and open the
        // next window.
        let Some((t, _)) = g.sched.queue.next_key() else {
            if g.sched.done_count == n {
                return;
            }
            let statuses: Vec<_> = g.sched.nodes.iter().map(|s| s.status).collect();
            g.poisoned = true;
            for cv in &shared.node_cvs {
                cv.notify_all();
            }
            shared.done_cv.notify_all();
            panic!("simulation deadlock: event queue empty, node states {statuses:?}");
        };
        if t >= g.sched.queue.window_end() {
            g.sched.queue.advance_window(t + lookahead);
        }
        predispatch(shared, &mut g);
        let (at, kind) = g.sched.next_event().expect("head key implies an event");
        debug_assert!(at >= g.sched.now);
        match kind {
            EventKind::Msg { to, msg } => {
                g.sched.now = at;
                g.sched.exec = Some(to);
                let mut world = g.world.take().expect("world re-entrancy");
                world.deliver(&mut g.sched, to, msg);
                g.world = Some(world);
                g.sched.exec = None;
            }
            EventKind::Resume { node, gen } => {
                if g.sched.nodes[node].gen != gen {
                    continue; // superseded by a later delay/wake
                }
                match g.sched.nodes[node].status {
                    Status::Ready { at: r } => debug_assert_eq!(r, at),
                    other => panic!("resume for node {node} in state {other:?}"),
                }
                g.sched.now = at;
                g.sched.nodes[node].status = Status::Running;
                g.sched.exec = Some(node);
                // Grant the turn. If the thread is parked it wakes here; if
                // it is running speculatively it picks the turn up at its
                // next world interaction; if it is fresh it starts its body.
                g.par.seg_done = false;
                g.par.tmode[node] = TMode::Turn;
                shared.node_cvs[node].notify_one();
                while !g.par.seg_done {
                    g = shared
                        .commit_cv
                        .wait(g)
                        .unwrap_or_else(|_| panic!("simulation poisoned"));
                    if g.poisoned {
                        panic!("simulation aborted: a node panicked");
                    }
                }
            }
        }
    }
}

/// Wake parked nodes whose next event is their own (valid) resume inside
/// the open window: their leading compute is independent of anything still
/// to commit before it, so they can run speculatively now.
fn predispatch<W: World>(shared: &Arc<Shared<W>>, g: &mut SimState<W>) {
    if g.par.spec_active >= g.par.spec_slots {
        return;
    }
    let end = g.sched.queue.window_end();
    for node in 0..g.sched.nodes.len() {
        if g.par.spec_active >= g.par.spec_slots {
            return;
        }
        if g.par.tmode[node] != TMode::Parked {
            continue;
        }
        if !matches!(g.sched.nodes[node].status, Status::Ready { .. }) {
            continue;
        }
        let slot_gen = g.sched.nodes[node].gen;
        let Some((t, _, kind)) = g.sched.queue.peek_node(node) else {
            continue;
        };
        if t >= end {
            continue;
        }
        let EventKind::Resume { gen, .. } = kind else {
            continue;
        };
        if *gen != slot_gen {
            continue;
        }
        g.par.spec_active += 1;
        g.par.tmode[node] = TMode::Spec;
        shared.node_cvs[node].notify_one();
    }
}

/// Run a simulated cluster to completion and return the final world.
///
/// `bodies` supplies one closure per node; all nodes start at virtual time 0.
/// Returns the world and the final virtual time (the maximum over all node
/// completion times and message deliveries).
pub fn run_cluster<W: World>(world: W, bodies: Vec<NodeBody<W>>) -> (W, Time) {
    let (w, t, _) = run_cluster_with(world, bodies, SimPar::serial());
    (w, t)
}

/// [`run_cluster`] plus the number of simulator events processed — the
/// denominator of the events/sec throughput metric.
pub fn run_cluster_counted<W: World>(world: W, bodies: Vec<NodeBody<W>>) -> (W, Time, u64) {
    run_cluster_with(world, bodies, SimPar::serial())
}

/// [`run_cluster_counted`] with an explicit execution mode: the shared entry
/// point behind every counted/uncounted variant. `par.threads <= 1` runs the
/// classic fully-serialized engine; anything larger runs the windowed
/// committer, which produces bit-identical results (see [`SimPar`]).
pub fn run_cluster_with<W: World>(
    world: W,
    bodies: Vec<NodeBody<W>>,
    par: SimPar,
) -> (W, Time, u64) {
    run_cluster_inner(world, bodies, par, None)
}

/// Run a cluster under a model-checker hook: fully serialized, with every
/// commit point routed through [`McHook::choose`]. A pruned execution (the
/// hook returned `None`) panics with [`MC_PRUNE`]; the exploration driver
/// wraps this call in `catch_unwind`.
pub fn run_cluster_mc<W: World>(
    world: W,
    bodies: Vec<NodeBody<W>>,
    mc: McInstall<W>,
) -> (W, Time, u64) {
    run_cluster_inner(world, bodies, SimPar::serial(), Some(mc))
}

fn run_cluster_inner<W: World>(
    world: W,
    bodies: Vec<NodeBody<W>>,
    par: SimPar,
    mc: Option<McInstall<W>>,
) -> (W, Time, u64) {
    let n = bodies.len();
    assert!(n > 0, "cluster needs at least one node");
    // Model checking controls the serial engine only: windowed execution is
    // an internal-parallelism optimization with identical semantics, so
    // nothing is lost by forcing threads = 1.
    let threads = if mc.is_some() { 1 } else { par.threads.max(1) };
    let windowed = threads > 1;
    let mut sched = SchedInner::new(n);
    sched.windowed = windowed;
    let (hook, msg_hash) = match mc {
        Some(m) => (Some(m.hook), Some(m.msg_hash)),
        None => (None, None),
    };
    // Install the hasher before the startup pushes so the initial n-way
    // resume tie is fingerprinted too.
    sched.mc_msg_hash = msg_hash;
    // Every node starts Ready at t=0; node 0's Resume is pushed first so it
    // runs first (deterministic startup order by node id).
    for node in 0..n {
        sched.nodes[node].status = Status::Ready { at: 0 };
        sched.nodes[node].gen = 1;
        sched.push(0, EventKind::Resume { node, gen: 1 });
    }
    let shared = Arc::new(Shared::<W> {
        state: Mutex::new(SimState {
            sched,
            world: Some(world),
            poisoned: false,
            par: ParDriver {
                tmode: vec![TMode::Fresh; n],
                spec_active: 0,
                spec_slots: threads - 1,
                seg_done: true,
            },
            mc: hook,
        }),
        node_cvs: (0..n).map(|_| Condvar::new()).collect(),
        done_cv: Condvar::new(),
        commit_cv: Condvar::new(),
    });

    let handles: Vec<_> = bodies
        .into_iter()
        .enumerate()
        .map(|(node, body)| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dsm-node-{node}"))
                .spawn(move || {
                    let mut ctx = NodeCtx {
                        shared,
                        node,
                        par: windowed,
                        spec: std::cell::Cell::new(false),
                    };
                    // Wait for our first Resume.
                    {
                        let mut g = ctx.lock();
                        while g.sched.nodes[node].status != Status::Running {
                            if g.poisoned {
                                panic!("simulation aborted before start");
                            }
                            g = ctx.shared.node_cvs[node]
                                .wait(g)
                                .unwrap_or_else(|_| panic!("simulation poisoned"));
                        }
                    }
                    let result =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut ctx)));
                    match result {
                        Ok(()) => {
                            if ctx.par {
                                ctx.finish_par()
                            } else {
                                ctx.finish()
                            }
                        }
                        Err(e) => {
                            // Poison the simulation so every parked thread
                            // and the main thread bail out promptly. The
                            // mutex itself may already be poisoned if the
                            // panic happened under the lock.
                            match ctx.shared.state.lock() {
                                Ok(mut g) => g.poisoned = true,
                                Err(e) => e.into_inner().poisoned = true,
                            }
                            for cv in &ctx.shared.node_cvs {
                                cv.notify_all();
                            }
                            ctx.shared.done_cv.notify_all();
                            ctx.shared.commit_cv.notify_all();
                            std::panic::resume_unwind(e);
                        }
                    }
                })
                .expect("spawn node thread")
        })
        .collect();

    if windowed {
        // The caller's thread is the committer: it executes every event in
        // global order and grants node segments one turn at a time.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            drive_windowed(&shared, n, par.lookahead_ns)
        }));
        if let Err(e) = r {
            match shared.state.lock() {
                Ok(mut g) => g.poisoned = true,
                Err(p) => p.into_inner().poisoned = true,
            }
            for cv in &shared.node_cvs {
                cv.notify_all();
            }
            shared.done_cv.notify_all();
            shared.commit_cv.notify_all();
            for h in handles {
                let _ = h.join();
            }
            std::panic::resume_unwind(e);
        }
    } else {
        // Kick off node 0: it is Ready at t=0 at the head of the queue, but
        // no thread is driving yet. Drive until the first hand-off, then
        // wait for completion.
        let mut g = match shared.state.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        drive_serial(&shared, g, None);
        g = match shared.state.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        };
        loop {
            if g.sched.done_count == n || g.poisoned {
                break;
            }
            g = match shared.done_cv.wait(g) {
                Ok(g) => g,
                Err(e) => e.into_inner(),
            };
        }
        drop(g);
    }

    // Re-raise the root-cause panic, not one of the cascade panics other
    // threads raise when they notice the poisoned state (the model-checking
    // driver distinguishes MC_PRUNE / deadlock payloads from real failures).
    fn is_cascade(e: &(dyn std::any::Any + Send)) -> bool {
        let msg = e
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| e.downcast_ref::<String>().map(|s| s.as_str()));
        msg.is_some_and(|m| {
            m.starts_with("simulation aborted") || m.starts_with("simulation poisoned")
        })
    }
    let mut panicked: Option<Box<dyn std::any::Any + Send>> = None;
    for h in handles {
        if let Err(e) = h.join() {
            let keep = match &panicked {
                None => true,
                Some(p) => is_cascade(p.as_ref()) && !is_cascade(e.as_ref()),
            };
            if keep {
                panicked = Some(e);
            }
        }
    }
    if let Some(e) = panicked {
        std::panic::resume_unwind(e);
    }

    let mut g = match shared.state.lock() {
        Ok(g) => g,
        Err(e) => e.into_inner(),
    };
    let t = g.sched.now;
    let events = g.sched.events;
    (g.world.take().expect("world"), t, events)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records message deliveries and can wake nodes.
    struct TestWorld {
        log: Vec<(Time, NodeId, u32)>,
        wake_on: Vec<Option<u32>>, // node -> tag that wakes it
    }

    impl World for TestWorld {
        type Msg = u32;
        fn deliver(&mut self, sched: &mut Sched<u32>, to: NodeId, msg: u32) {
            self.log.push((sched.now(), to, msg));
            if self.wake_on.get(to).copied().flatten() == Some(msg) && sched.is_blocked(to) {
                let now = sched.now();
                sched.wake(to, now);
            }
        }
    }

    #[test]
    fn advances_virtual_time_per_node() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, None],
        };
        let (_, t) = run_cluster(
            world,
            vec![
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.advance(100);
                    assert_eq!(ctx.now(), 100);
                    ctx.advance(50);
                    assert_eq!(ctx.now(), 150);
                }),
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.advance(500);
                    assert_eq!(ctx.now(), 500);
                }),
            ],
        );
        assert_eq!(t, 500);
    }

    #[test]
    fn messages_deliver_at_posted_time() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, Some(7)],
        };
        let (w, _) = run_cluster(
            world,
            vec![
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.world(|_, s| s.post(1, 250, 7));
                    ctx.advance(10);
                }),
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.block(); // until msg 7 arrives at t=250
                    assert_eq!(ctx.now(), 250);
                }),
            ],
        );
        assert_eq!(w.log, vec![(250, 1, 7)]);
    }

    #[test]
    fn post_done_drain_follows_event_chains() {
        // After every node body has returned, in-flight messages are still
        // delivered — including messages that deliveries themselves post
        // (retransmission-timer chains in the fabric depend on this).
        struct ChainWorld {
            log: Vec<(Time, u32)>,
        }
        impl World for ChainWorld {
            type Msg = u32;
            fn deliver(&mut self, sched: &mut Sched<u32>, _to: NodeId, msg: u32) {
                self.log.push((sched.now(), msg));
                if msg < 3 {
                    let at = sched.now() + 100;
                    sched.post(0, at, msg + 1);
                }
            }
        }
        let (w, t) = run_cluster(
            ChainWorld { log: vec![] },
            vec![Box::new(|ctx: &mut NodeCtx<ChainWorld>| {
                // Post the chain's head and return immediately: the whole
                // chain runs in the post-Done drain.
                ctx.world(|_, s| s.post(0, 1_000, 0));
            })],
        );
        assert_eq!(w.log, vec![(1_000, 0), (1_100, 1), (1_200, 2), (1_300, 3)]);
        assert_eq!(t, 1_300, "drain must advance the clock through the chain");
    }

    #[test]
    fn delay_pushes_back_compute_segment() {
        struct DelayWorld;
        impl World for DelayWorld {
            type Msg = ();
            fn deliver(&mut self, sched: &mut Sched<()>, to: NodeId, _msg: ()) {
                // Charge 100ns of occupancy beyond the target's scheduled
                // resume time.
                let until = sched.resume_at(to).unwrap_or(sched.now()) + 100;
                sched.delay(to, until);
            }
        }
        let (_, t) = run_cluster(
            DelayWorld,
            vec![
                Box::new(|ctx: &mut NodeCtx<DelayWorld>| {
                    ctx.world(|_, s| s.post(1, 50, ()));
                    ctx.advance(1);
                }),
                Box::new(|ctx: &mut NodeCtx<DelayWorld>| {
                    // Computing until 200; the message at t=50 charges 100ns
                    // beyond our scheduled resume, so we resume at 300.
                    ctx.advance(200);
                    assert_eq!(ctx.now(), 300);
                }),
            ],
        );
        assert_eq!(t, 300);
    }

    #[test]
    fn deterministic_event_order_across_runs() {
        fn run_once() -> Vec<(Time, NodeId, u32)> {
            let world = TestWorld {
                log: vec![],
                wake_on: vec![None; 4],
            };
            type TestBody = Box<dyn FnOnce(&mut NodeCtx<TestWorld>) + Send>;
            let bodies: Vec<TestBody> = (0..4)
                .map(|i| {
                    Box::new(move |ctx: &mut NodeCtx<TestWorld>| {
                        for k in 0..10u32 {
                            let target = ((i + 1) % 4) as NodeId;
                            ctx.world(|_, s| {
                                let at = s.now() + 37;
                                s.post(target, at, k * 10 + i as u32)
                            });
                            ctx.advance(13 + i as u64);
                        }
                    }) as TestBody
                })
                .collect();
            run_cluster(world, bodies).0.log
        }
        let a = run_once();
        let b = run_once();
        assert_eq!(a, b);
        assert_eq!(a.len(), 40);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn blocked_forever_panics() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None],
        };
        run_cluster(
            world,
            vec![Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                ctx.block();
            })],
        );
    }

    #[test]
    fn pending_wake_is_consumed_by_next_block() {
        // A wake that lands while the node is still computing must not be
        // lost: the node's next block() returns immediately at (or after)
        // the wake time.
        struct WakeEarly;
        impl World for WakeEarly {
            type Msg = ();
            fn deliver(&mut self, sched: &mut Sched<()>, to: NodeId, _msg: ()) {
                let now = sched.now();
                sched.wake(to, now + 5);
            }
        }
        let (_, t) = run_cluster(
            WakeEarly,
            vec![
                Box::new(|ctx: &mut NodeCtx<WakeEarly>| {
                    ctx.world(|_, s| s.post(1, 10, ()));
                    ctx.advance(1);
                }),
                Box::new(|ctx: &mut NodeCtx<WakeEarly>| {
                    // Compute past the wake at t=15, then block: the stored
                    // wake releases us instantly instead of deadlocking.
                    ctx.advance(100);
                    ctx.block();
                    assert_eq!(ctx.now(), 100);
                }),
            ],
        );
        assert_eq!(t, 100);
    }

    #[test]
    fn delay_ignores_blocked_nodes() {
        struct DelayBlocked;
        impl World for DelayBlocked {
            type Msg = u8;
            fn deliver(&mut self, sched: &mut Sched<u8>, to: NodeId, msg: u8) {
                match msg {
                    0 => {
                        // Try to delay a blocked node: must be a no-op.
                        let until = sched.now() + 1_000_000;
                        sched.delay(to, until);
                        let now = sched.now();
                        sched.wake(to, now + 1);
                    }
                    _ => unreachable!(),
                }
            }
        }
        let (_, t) = run_cluster(
            DelayBlocked,
            vec![
                Box::new(|ctx: &mut NodeCtx<DelayBlocked>| {
                    ctx.world(|_, s| s.post(1, 50, 0));
                    ctx.advance(1);
                }),
                Box::new(|ctx: &mut NodeCtx<DelayBlocked>| {
                    ctx.block();
                    // Woken at 51, not delayed to 1ms.
                    assert_eq!(ctx.now(), 51);
                }),
            ],
        );
        assert_eq!(t, 51);
    }

    #[test]
    fn post_in_the_past_clamps_to_now() {
        struct PastPost {
            got: Vec<Time>,
        }
        impl World for PastPost {
            type Msg = bool;
            fn deliver(&mut self, sched: &mut Sched<bool>, _to: NodeId, msg: bool) {
                if msg {
                    // Attempt to post 100ns in the past.
                    let target = sched.now().saturating_sub(100);
                    sched.post(0, target, false);
                } else {
                    self.got.push(sched.now());
                }
            }
        }
        let (w, _) = run_cluster(
            PastPost { got: vec![] },
            vec![Box::new(|ctx: &mut NodeCtx<PastPost>| {
                ctx.world(|_, s| s.post(0, 500, true));
                ctx.advance(1_000);
            })],
        );
        assert_eq!(w.got, vec![500]);
    }

    /// Windowed runs of the cross-posting workload must reproduce the
    /// serial event log, final time, and event count bit-for-bit, for any
    /// thread count (including more threads than nodes).
    #[test]
    fn windowed_matches_serial() {
        fn run_once(par: SimPar) -> (Vec<(Time, NodeId, u32)>, Time, u64) {
            let world = TestWorld {
                log: vec![],
                wake_on: vec![None; 4],
            };
            type TestBody = Box<dyn FnOnce(&mut NodeCtx<TestWorld>) + Send>;
            let bodies: Vec<TestBody> = (0..4)
                .map(|i| {
                    Box::new(move |ctx: &mut NodeCtx<TestWorld>| {
                        for k in 0..10u32 {
                            let target = ((i + 1) % 4) as NodeId;
                            ctx.world(|_, s| {
                                let at = s.now() + 37;
                                s.post(target, at, k * 10 + i as u32)
                            });
                            ctx.advance(13 + i as u64);
                        }
                    }) as TestBody
                })
                .collect();
            let (w, t, ev) = run_cluster_with(world, bodies, par);
            (w.log, t, ev)
        }
        // Cross-node posts land 37ns out: any lookahead <= 37 is valid.
        let serial = run_once(SimPar::serial());
        for threads in [2, 3, 8] {
            assert_eq!(run_once(SimPar::windowed(threads, 37)), serial);
        }
    }

    #[test]
    fn windowed_block_and_wake() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, Some(7)],
        };
        let (w, t, _) = run_cluster_with(
            world,
            vec![
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.world(|_, s| s.post(1, 250, 7));
                    ctx.advance(10);
                }),
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.block(); // until msg 7 arrives at t=250
                    assert_eq!(ctx.now(), 250);
                }),
            ],
            SimPar::windowed(2, 100),
        );
        assert_eq!(w.log, vec![(250, 1, 7)]);
        assert_eq!(t, 250);
    }

    #[test]
    fn windowed_post_done_drain_follows_event_chains() {
        struct ChainWorld {
            log: Vec<(Time, u32)>,
        }
        impl World for ChainWorld {
            type Msg = u32;
            fn deliver(&mut self, sched: &mut Sched<u32>, _to: NodeId, msg: u32) {
                self.log.push((sched.now(), msg));
                if msg < 3 {
                    let at = sched.now() + 100;
                    sched.post(0, at, msg + 1);
                }
            }
        }
        let (w, t, _) = run_cluster_with(
            ChainWorld { log: vec![] },
            vec![Box::new(|ctx: &mut NodeCtx<ChainWorld>| {
                ctx.world(|_, s| s.post(0, 1_000, 0));
            })],
            SimPar::windowed(4, 50),
        );
        assert_eq!(w.log, vec![(1_000, 0), (1_100, 1), (1_200, 2), (1_300, 3)]);
        assert_eq!(t, 1_300);
    }

    #[test]
    fn windowed_pending_wake_is_consumed_by_next_block() {
        struct WakeEarly;
        impl World for WakeEarly {
            type Msg = ();
            fn deliver(&mut self, sched: &mut Sched<()>, to: NodeId, _msg: ()) {
                let now = sched.now();
                sched.wake(to, now + 5);
            }
        }
        let (_, t, _) = run_cluster_with(
            WakeEarly,
            vec![
                Box::new(|ctx: &mut NodeCtx<WakeEarly>| {
                    ctx.world(|_, s| s.post(1, 10, ()));
                    ctx.advance(1);
                }),
                Box::new(|ctx: &mut NodeCtx<WakeEarly>| {
                    ctx.advance(100);
                    ctx.block();
                    assert_eq!(ctx.now(), 100);
                }),
            ],
            SimPar::windowed(2, 5),
        );
        assert_eq!(t, 100);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn windowed_blocked_forever_panics() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, None],
        };
        run_cluster_with(
            world,
            vec![
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.block();
                }),
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.advance(10);
                }),
            ],
            SimPar::windowed(2, 20),
        );
    }

    #[test]
    fn ties_break_by_post_order() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, None],
        };
        let (w, _) = run_cluster(
            world,
            vec![
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.world(|_, s| {
                        s.post(1, 100, 1);
                        s.post(1, 100, 2);
                        s.post(1, 100, 3);
                    });
                    ctx.advance(1);
                }),
                Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                    ctx.advance(200);
                }),
            ],
        );
        let tags: Vec<u32> = w.log.iter().map(|&(_, _, m)| m).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    /// Test hook: delegates every choice to a closure over
    /// `(number of choices, engine hash)`.
    struct PickHook<F: FnMut(usize, u64) -> Option<usize> + Send>(F);
    impl<W: World, F: FnMut(usize, u64) -> Option<usize> + Send> McHook<W> for PickHook<F> {
        fn choose(
            &mut self,
            _world: &W,
            engine_hash: u64,
            _at: Time,
            choices: &[McChoice<'_, W::Msg>],
        ) -> Option<usize> {
            (self.0)(choices.len(), engine_hash)
        }
    }

    fn tie_bodies() -> Vec<NodeBody<TestWorld>> {
        vec![
            Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                ctx.world(|_, s| {
                    s.post(1, 100, 1);
                    s.post(1, 100, 2);
                    s.post(1, 100, 3);
                });
                ctx.advance(1);
            }),
            Box::new(|ctx: &mut NodeCtx<TestWorld>| {
                ctx.advance(200);
            }),
        ]
    }

    #[test]
    fn mc_hook_reverses_tie_order() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, None],
        };
        let (w, _, _) = run_cluster_mc(
            world,
            tie_bodies(),
            McInstall {
                hook: Box::new(PickHook(|n: usize, _| Some(n - 1))),
                msg_hash: Box::new(|_, m: &u32| u64::from(*m)),
            },
        );
        let tags: Vec<u32> = w.log.iter().map(|&(_, _, m)| m).collect();
        assert_eq!(tags, vec![3, 2, 1], "picking last reverses the tie");
    }

    #[test]
    fn mc_first_choice_matches_serial_and_hashes_replay() {
        fn mc_run() -> (Vec<(Time, NodeId, u32)>, Vec<u64>, u64) {
            let hashes = Arc::new(Mutex::new(Vec::new()));
            let sink = Arc::clone(&hashes);
            let world = TestWorld {
                log: vec![],
                wake_on: vec![None, None],
            };
            let (w, _, ev) = run_cluster_mc(
                world,
                tie_bodies(),
                McInstall {
                    hook: Box::new(PickHook(move |_, eh| {
                        sink.lock().unwrap().push(eh);
                        Some(0)
                    })),
                    msg_hash: Box::new(|to, m: &u32| fold64(u64::from(*m), to as u64)),
                },
            );
            let hs = hashes.lock().unwrap().clone();
            (w.log, hs, ev)
        }
        let serial = run_cluster(
            TestWorld {
                log: vec![],
                wake_on: vec![None, None],
            },
            tie_bodies(),
        )
        .0
        .log;
        let (log_a, hashes_a, ev_a) = mc_run();
        let (log_b, hashes_b, ev_b) = mc_run();
        assert_eq!(log_a, serial, "always-first replays the serial schedule");
        assert_eq!(log_a, log_b);
        assert_eq!(ev_a, ev_b);
        assert!(!hashes_a.is_empty());
        assert_eq!(hashes_a, hashes_b, "engine hashes are replay-stable");
    }

    #[test]
    fn mc_prune_panics_with_sentinel() {
        let world = TestWorld {
            log: vec![],
            wake_on: vec![None, None],
        };
        let mut steps = 0u32;
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_cluster_mc(
                world,
                tie_bodies(),
                McInstall {
                    hook: Box::new(PickHook(move |_, _| {
                        steps += 1;
                        if steps > 2 {
                            None
                        } else {
                            Some(0)
                        }
                    })),
                    msg_hash: Box::new(|_, m: &u32| u64::from(*m)),
                },
            )
        }));
        let e = match r {
            Ok(_) => panic!("pruned run must panic"),
            Err(e) => e,
        };
        let msg = e
            .downcast_ref::<&'static str>()
            .copied()
            .or_else(|| e.downcast_ref::<String>().map(|s| s.as_str()))
            .unwrap_or("");
        assert_eq!(msg, MC_PRUNE);
    }
}
