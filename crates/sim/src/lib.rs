#![warn(missing_docs)]

//! Deterministic discrete-event simulation engine for the DSM reproduction.
//!
//! The engine runs one OS thread per simulated cluster node. By default
//! execution is fully serialized: exactly one logical entity (a node thread
//! or an in-flight message handler) runs at any instant, under a single
//! global lock. Events are ordered by `(virtual time, sequence number)`,
//! where the sequence number is assigned at enqueue time, so a given program
//! produces exactly the same event order — and therefore the same
//! statistics — on every run.
//!
//! With [`engine::SimPar::windowed`] (or `DSM_SIM_PAR > 1` at the runner
//! level) the engine switches to conservative windowed parallel execution:
//! a committer thread still executes every event in exact global order
//! (keeping results bit-identical to serial), while node threads overlap
//! their thread-local leading compute within a lookahead window derived
//! from the minimum inter-node network latency. See `DESIGN.md`.
//!
//! Node threads interact with the engine through [`NodeCtx`]:
//!
//! * [`NodeCtx::advance`] moves the node's virtual clock forward (modeling
//!   computation), processing any intervening events;
//! * [`NodeCtx::block`] parks the node until some message handler wakes it;
//! * [`NodeCtx::world`] gives exclusive access to the shared protocol state
//!   plus a [`Sched`] handle for posting messages and waking nodes.
//!
//! Messages posted with [`Sched::post`] are delivered by calling
//! [`World::deliver`] at their arrival time; the handler runs inline on
//! whichever thread is currently driving the event loop.

pub mod engine;
pub mod queue;
pub mod rng;
pub mod time;

pub use engine::{
    run_cluster, run_cluster_counted, run_cluster_mc, run_cluster_with, McChoice, McEvent, McHook,
    McInstall, NodeCtx, Sched, SimPar, World, MC_PRUNE,
};
pub use time::{Time, MICROS, MILLIS, SECS};

/// Index of a simulated cluster node, `0..nodes`.
pub type NodeId = usize;
