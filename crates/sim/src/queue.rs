//! Event queues: a calendar of near-future buckets with a binary heap
//! fallback for far-future events ([`BucketQueue`]), and a per-node split of
//! such calendars with a staging wheel for cross-node traffic
//! ([`SplitQueue`]) used by the windowed (PDES) execution mode.
//!
//! The simulator's event population is dense and near-sighted: at any
//! instant the queue holds one resume per runnable node plus the messages in
//! flight, and almost every event lands within a few hundred microseconds of
//! `now` (network latencies are 20–440 µs one-way, compute segments are
//! shorter still). A general-purpose [`BinaryHeap`] pays `O(log n)` with
//! branchy sift loops on every operation; a calendar queue turns the common
//! case into an append to an unsorted bucket and an occasional small sort.
//!
//! Layout: time is divided into fixed-width buckets of `2^BUCKET_SHIFT` ns.
//! A ring of [`NUM_BUCKETS`] unsorted buckets covers the near horizon
//! (`cursor .. cursor + NUM_BUCKETS`); events beyond the horizon overflow
//! into a min-heap and are pulled back into the ring as the cursor advances.
//! The bucket currently being drained is kept sorted (descending, so `pop`
//! takes from the back); same-bucket inserts go into it by binary search.
//!
//! Pop order is exactly ascending `(time, sequence)` — identical to the
//! previous `BinaryHeap` engine, which is what keeps the simulation
//! deterministic and bit-compatible with cached results. The differential
//! test at the bottom asserts this against a reference heap on randomized
//! workloads.

use std::collections::BinaryHeap;

use crate::time::Time;
use crate::NodeId;

/// log2 of the bucket width in ns (8.2 µs per bucket).
const BUCKET_SHIFT: u32 = 13;
/// Ring size; the near horizon is `NUM_BUCKETS << BUCKET_SHIFT` ≈ 4.2 ms.
const NUM_BUCKETS: usize = 512;

/// A far-future event, ordered ascending by `(time, seq)` through a
/// reversed `Ord` so it can live in a max-[`BinaryHeap`].
struct FarEntry<V> {
    at: Time,
    seq: u64,
    v: V,
}

impl<V> PartialEq for FarEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<V> Eq for FarEntry<V> {}
impl<V> PartialOrd for FarEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for FarEntry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the heap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Calendar/bucket event queue with heap overflow. `push` tags each event
/// with an internal monotone sequence number; `pop` returns events in
/// ascending `(time, sequence)` order.
pub struct BucketQueue<V> {
    seq: u64,
    len: usize,
    /// Events currently stored in ring buckets (excludes `active` and far).
    near_len: usize,
    /// Unsorted buckets; absolute bucket `b` lives at `b % NUM_BUCKETS` for
    /// `b` in `[cursor, cursor + NUM_BUCKETS)`.
    ring: Vec<Vec<(Time, u64, V)>>,
    /// Next absolute bucket the cursor will open.
    cursor: u64,
    /// The sorted front segment (descending by `(time, seq)` so the next
    /// event is at the back): the contents of every bucket opened so far.
    active: Vec<(Time, u64, V)>,
    /// Time of the last popped event (debug-assert monotonicity guard).
    last_pop: Time,
    /// Far-future overflow (beyond the ring horizon).
    far: BinaryHeap<FarEntry<V>>,
}

impl<V> Default for BucketQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BucketQueue<V> {
    /// An empty queue starting at time 0.
    pub fn new() -> Self {
        BucketQueue {
            seq: 0,
            len: 0,
            near_len: 0,
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 1,
            active: Vec::new(),
            last_pop: 0,
            far: BinaryHeap::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `v` at time `at`. Events must not be pushed before the time of
    /// the last popped event (the engine clamps all posts to `now`).
    pub fn push(&mut self, at: Time, v: V) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.place(at, seq, v);
    }

    /// Queue `v` at time `at` with an externally assigned tie-break sequence
    /// number. Used by [`SplitQueue`], which owns one global counter across
    /// all wheels so that tie-breaking is identical to a single queue. Do
    /// not mix with [`BucketQueue::push`] on the same queue.
    pub fn push_with_seq(&mut self, at: Time, seq: u64, v: V) {
        self.len += 1;
        self.place(at, seq, v);
    }

    fn place(&mut self, at: Time, seq: u64, v: V) {
        let b = at >> BUCKET_SHIFT;
        debug_assert!(
            at >= self.last_pop,
            "event pushed into the past: t={at} < last popped {}",
            self.last_pop
        );
        if b < self.cursor {
            // The bucket was already opened (or passed over while peeking
            // ahead): the sorted front segment `active` is the only place
            // left for it. Everything in the ring or far heap is at bucket
            // `cursor` or later, so a binary insert keeps global order.
            let key = (at, seq);
            let pos = self.active.partition_point(|e| (e.0, e.1) > key);
            self.active.insert(pos, (at, seq, v));
        } else if b < self.cursor + NUM_BUCKETS as u64 {
            self.ring[(b % NUM_BUCKETS as u64) as usize].push((at, seq, v));
            self.near_len += 1;
        } else {
            self.far.push(FarEntry { at, seq, v });
        }
    }

    /// Move far events that the advancing horizon now covers into the ring.
    fn drain_far(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS as u64;
        while let Some(top) = self.far.peek() {
            if top.at >> BUCKET_SHIFT >= horizon {
                break;
            }
            let e = self.far.pop().unwrap();
            self.ring[((e.at >> BUCKET_SHIFT) % NUM_BUCKETS as u64) as usize]
                .push((e.at, e.seq, e.v));
            self.near_len += 1;
        }
    }

    /// Ensure the head event (if any) sits at the back of `active`.
    /// Returns false when the queue is empty.
    fn settle(&mut self) -> bool {
        if !self.active.is_empty() {
            return true;
        }
        if self.len == 0 {
            return false;
        }
        loop {
            if self.near_len == 0 {
                let minb = match self.far.peek() {
                    Some(top) => top.at >> BUCKET_SHIFT,
                    None => return false, // unreachable while len > 0
                };
                // Jump the cursor straight to the earliest far event instead
                // of scanning empty buckets.
                self.cursor = self.cursor.max(minb);
            }
            self.drain_far();
            // Open the next non-empty bucket.
            while self.near_len > 0 {
                let idx = (self.cursor % NUM_BUCKETS as u64) as usize;
                if self.ring[idx].is_empty() {
                    self.cursor += 1;
                    self.drain_far();
                    continue;
                }
                self.active = std::mem::take(&mut self.ring[idx]);
                self.near_len -= self.active.len();
                // Unique (time, seq) keys: unstable sort is deterministic.
                self.active
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                self.cursor += 1;
                return true;
            }
        }
    }

    /// Remove and return the earliest `(time, value)`, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, V)> {
        self.pop_entry().map(|(at, _, v)| (at, v))
    }

    /// [`BucketQueue::pop`] including the tie-break sequence number.
    pub fn pop_entry(&mut self) -> Option<(Time, u64, V)> {
        if !self.settle() {
            return None;
        }
        let e = self.active.pop().expect("settled queue has a head");
        self.len -= 1;
        self.last_pop = e.0;
        Some(e)
    }

    /// The `(time, seq)` key of the earliest event without removing it.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        if !self.settle() {
            return None;
        }
        self.active.last().map(|e| (e.0, e.1))
    }

    /// The earliest event by reference, with its key.
    pub fn peek_entry(&mut self) -> Option<(Time, u64, &V)> {
        if !self.settle() {
            return None;
        }
        self.active.last().map(|e| (e.0, e.1, &e.2))
    }

    /// Rewind an *empty* queue to time 0, keeping its buffers. Draining can
    /// leave the cursor far in the future (e.g. after popping a far-future
    /// event); the staging wheel rewinds after every window merge so the
    /// next window's pushes are never "in the past".
    fn rewind(&mut self) {
        debug_assert!(self.len == 0);
        self.cursor = 1;
        self.last_pop = 0;
    }
}

/// Head-key sentinel for an empty wheel: compares greater than any real key.
const EMPTY_KEY: (Time, u64) = (Time::MAX, u64::MAX);

/// Per-node event wheels plus a staging wheel for cross-node traffic.
///
/// Every event is addressed at one node; each node gets its own
/// [`BucketQueue`] wheel, and one global monotone sequence counter spans all
/// wheels so that popping the global minimum `(time, seq)` reproduces the
/// exact order (including tie-breaks) of a single shared queue.
///
/// In windowed (PDES) execution the engine opens a lookahead window
/// `[start, start + L)`: conservative lookahead guarantees that an event
/// produced *for another node* while executing inside the window cannot land
/// before the window's end, so such events are staged on the `cross` wheel
/// without touching the target node's wheel mid-window. At each window edge
/// [`SplitQueue::advance_window`] merges the staged events back into the
/// per-node wheels, preserving their original `(time, seq)` keys — the merge
/// is therefore deterministic and order-identical to direct insertion.
///
/// Robustness: `pop`/`next_key` always consult the staged wheel's head too,
/// so even an event staged in violation of the lookahead bound (which a
/// debug assert flags) is still popped in correct global order.
pub struct SplitQueue<V> {
    seq: u64,
    len: usize,
    wheels: Vec<BucketQueue<V>>,
    /// Cached head key per wheel ([`EMPTY_KEY`] when empty).
    heads: Vec<(Time, u64)>,
    /// Cross-node events staged until the next window edge.
    cross: BucketQueue<(NodeId, V)>,
    cross_head: (Time, u64),
    /// Exclusive end of the currently open window (0 before the first one).
    window_end: Time,
}

impl<V> SplitQueue<V> {
    /// An empty queue for `n` nodes starting at time 0.
    pub fn new(n: usize) -> Self {
        SplitQueue {
            seq: 0,
            len: 0,
            wheels: (0..n).map(|_| BucketQueue::new()).collect(),
            heads: vec![EMPTY_KEY; n],
            cross: BucketQueue::new(),
            cross_head: EMPTY_KEY,
            window_end: 0,
        }
    }

    /// Number of queued events (staged ones included).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Exclusive end of the open lookahead window.
    pub fn window_end(&self) -> Time {
        self.window_end
    }

    /// Queue `v` for `node` at time `at`. `cross` marks an event produced
    /// for a *different* node than the one currently executing (windowed
    /// mode only; serial execution always passes false): such events are
    /// staged until the next window edge. Conservative lookahead means they
    /// land at or past the window's end; a closer one trips a debug assert
    /// but is still handled correctly (direct insertion).
    pub fn push(&mut self, node: NodeId, at: Time, v: V, cross: bool) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let key = (at, seq);
        if cross && at >= self.window_end {
            self.cross.push_with_seq(at, seq, (node, v));
            if key < self.cross_head {
                self.cross_head = key;
            }
        } else {
            debug_assert!(
                !cross,
                "cross-node event at t={at} inside the open window (end {}): \
                 lookahead bound violated",
                self.window_end
            );
            self.wheels[node].push_with_seq(at, seq, v);
            if key < self.heads[node] {
                self.heads[node] = key;
            }
        }
    }

    /// Merge all staged cross-node events back into their target wheels
    /// (preserving their original `(time, seq)` keys) and open a new window
    /// ending at `end`.
    pub fn advance_window(&mut self, end: Time) {
        debug_assert!(end >= self.window_end);
        while let Some((at, seq, (node, v))) = self.cross.pop_entry() {
            self.wheels[node].push_with_seq(at, seq, v);
            if (at, seq) < self.heads[node] {
                self.heads[node] = (at, seq);
            }
        }
        self.cross.rewind();
        self.cross_head = EMPTY_KEY;
        self.window_end = end;
    }

    /// The `(time, seq)` key of the globally earliest event (staged cross
    /// events included), or `None` when empty.
    pub fn next_key(&self) -> Option<(Time, u64)> {
        let mut best = self.cross_head;
        for &h in &self.heads {
            if h < best {
                best = h;
            }
        }
        (best != EMPTY_KEY).then_some(best)
    }

    /// The head event of one node's wheel (staged cross events excluded).
    pub fn peek_node(&mut self, node: NodeId) -> Option<(Time, u64, &V)> {
        self.wheels[node].peek_entry()
    }

    /// Remove and return the globally earliest `(time, node, value)` in
    /// ascending `(time, seq)` order — bit-identical to a single queue.
    pub fn pop(&mut self) -> Option<(Time, NodeId, V)> {
        self.pop_keyed().map(|(at, _, node, v)| (at, node, v))
    }

    /// [`SplitQueue::pop`] including the global tie-break sequence number.
    /// The key is stable event identity: an event popped and re-inserted
    /// with [`SplitQueue::unpop`] keeps its `(time, seq)` position.
    pub fn pop_keyed(&mut self) -> Option<(Time, u64, NodeId, V)> {
        let mut best = self.cross_head;
        let mut who = usize::MAX; // MAX = the cross wheel
        for (i, &h) in self.heads.iter().enumerate() {
            if h < best {
                best = h;
                who = i;
            }
        }
        if best == EMPTY_KEY {
            return None;
        }
        self.len -= 1;
        if who == usize::MAX {
            let (at, seq, (node, v)) = self.cross.pop_entry().expect("cached cross head");
            self.cross_head = self.cross.peek_key().unwrap_or(EMPTY_KEY);
            Some((at, seq, node, v))
        } else {
            let (at, seq, v) = self.wheels[who].pop_entry().expect("cached wheel head");
            self.heads[who] = self.wheels[who].peek_key().unwrap_or(EMPTY_KEY);
            Some((at, seq, who, v))
        }
    }

    /// Re-insert an event removed by [`SplitQueue::pop_keyed`] under its
    /// original key, restoring it to exactly its former global position.
    /// The model checker pops every event tied at the head time to expose
    /// the choice, then returns the unchosen ones. Serial mode only (the
    /// event goes to its node wheel, never the cross stage), and `at` must
    /// equal the just-popped head time (the wheels' monotonicity guard
    /// allows re-insertion *at* the last popped time, not before it).
    pub fn unpop(&mut self, node: NodeId, at: Time, seq: u64, v: V) {
        self.len += 1;
        self.wheels[node].push_with_seq(at, seq, v);
        if (at, seq) < self.heads[node] {
            self.heads[node] = (at, seq);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.push(300, "c");
        q.push(100, "a");
        q.push(200, "b");
        assert_eq!(q.pop(), Some((100, "a")));
        assert_eq!(q.pop(), Some((200, "b")));
        assert_eq!(q.pop(), Some((300, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = BucketQueue::new();
        for i in 0..10u32 {
            q.push(500, i);
        }
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some((500, i)));
        }
    }

    #[test]
    fn pop_keyed_and_unpop_preserve_global_order() {
        let mut q: SplitQueue<&str> = SplitQueue::new(2);
        q.push(0, 100, "a0", false);
        q.push(1, 100, "b0", false);
        q.push(0, 200, "later", false);
        // Pop both events tied at t=100, then put the first one back: it
        // must come out again at its original position, before the second.
        let (at_a, seq_a, node_a, v_a) = q.pop_keyed().unwrap();
        assert_eq!((at_a, node_a, v_a), (100, 0, "a0"));
        let (at_b, _, node_b, v_b) = q.pop_keyed().unwrap();
        assert_eq!((at_b, node_b, v_b), (100, 1, "b0"));
        q.unpop(node_a, at_a, seq_a, v_a);
        assert_eq!(q.len(), 2);
        assert_eq!(q.next_key(), Some((100, seq_a)));
        assert_eq!(q.pop(), Some((100, 0, "a0")));
        assert_eq!(q.pop(), Some((200, 0, "later")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = BucketQueue::new();
        let far = (NUM_BUCKETS as u64 + 10) << BUCKET_SHIFT;
        q.push(far, "far");
        q.push(10, "near");
        assert_eq!(q.pop(), Some((10, "near")));
        assert_eq!(q.pop(), Some((far, "far")));
    }

    #[test]
    fn interleaved_push_pop_within_one_bucket() {
        let mut q = BucketQueue::new();
        q.push(10, 0u32);
        q.push(50, 1);
        assert_eq!(q.pop(), Some((10, 0)));
        // Insert into the bucket currently being drained.
        q.push(20, 2);
        q.push(15, 3);
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((50, 1)));
    }

    #[test]
    fn cursor_jumps_over_long_empty_gaps() {
        let mut q = BucketQueue::new();
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        // Next event is millions of buckets away: pop must not scan them.
        let t = 1u64 << 40;
        q.push(t, "b");
        q.push(t + 1, "c");
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t + 1, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_events_merge_correctly_with_near_ones() {
        // A far event that becomes near as the cursor advances must
        // interleave in exact time order with ring events.
        let mut q = BucketQueue::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        q.push(horizon + 500, 1u32); // far at push time
        q.push(100, 0);
        assert_eq!(q.pop(), Some((100, 0)));
        q.push(horizon + 600, 2); // near now? still beyond cursor+NB: far
        q.push(horizon + 200, 3);
        assert_eq!(q.pop(), Some((horizon + 200, 3)));
        assert_eq!(q.pop(), Some((horizon + 500, 1)));
        assert_eq!(q.pop(), Some((horizon + 600, 2)));
    }

    /// Deterministic xorshift for the differential test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn differential_against_reference_heap() {
        // Random interleaved push/pop traffic, compared op-for-op against a
        // reference BinaryHeap with explicit (time, seq) ordering. Spans
        // bucket boundaries, the far horizon, ties, and monotone `now`
        // clamping — the exact contract the engine relies on.
        for seed in [1u64, 7, 0xDEAD_BEEF, 0x1234_5678_9ABC] {
            let mut rng = Rng(seed);
            let mut q = BucketQueue::new();
            let mut reference: BinaryHeap<FarEntry<u64>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..20_000 {
                if !rng.next().is_multiple_of(3) || reference.is_empty() {
                    // Push at now + a skewed delta: mostly near, sometimes
                    // far beyond the horizon.
                    let delta = match rng.next() % 10 {
                        0 => 0,
                        1..=6 => rng.next() % 300_000,   // near
                        7 | 8 => rng.next() % 4_000_000, // mid
                        _ => rng.next() % 50_000_000,    // beyond horizon
                    };
                    let at = now + delta;
                    q.push(at, step);
                    reference.push(FarEntry { at, seq, v: step });
                    seq += 1;
                } else {
                    let got = q.pop();
                    let want = reference.pop().map(|e| {
                        now = e.at;
                        (e.at, e.v)
                    });
                    assert_eq!(got, want, "seed {seed} step {step}");
                }
                assert_eq!(q.len(), reference.len());
            }
            // Drain both completely.
            while let Some(want) = reference.pop() {
                assert_eq!(q.pop(), Some((want.at, want.v)), "seed {seed} drain");
            }
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn split_empty_window_advance() {
        // Advancing the window with nothing staged (and on a fully empty
        // queue) is a no-op apart from moving the edge.
        let mut q: SplitQueue<&str> = SplitQueue::new(3);
        assert_eq!(q.next_key(), None);
        q.advance_window(10_000);
        q.advance_window(50_000);
        assert_eq!(q.window_end(), 50_000);
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        // Still fully usable afterwards.
        q.push(1, 60_000, "a", false);
        q.push(2, 55_000, "b", false);
        assert_eq!(q.pop(), Some((55_000, 2, "b")));
        assert_eq!(q.pop(), Some((60_000, 1, "a")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn split_far_overflow_crosses_window_edge() {
        // A staged cross-node event far beyond the ring horizon spills into
        // the target wheel's far heap at the window edge and still pops in
        // exact (time, seq) order relative to near events.
        let mut q: SplitQueue<u32> = SplitQueue::new(2);
        let far = (NUM_BUCKETS as u64 + 50) << BUCKET_SHIFT; // ~4.6 ms out
        q.advance_window(40_000);
        q.push(0, 10_000, 0, false); // direct, in window
        q.push(1, far, 1, true); // staged, far future
        q.push(1, 45_000, 2, true); // staged, just past the edge
        assert_eq!(q.pop(), Some((10_000, 0, 0)));
        // Window edge: staged events merge into node 1's wheel.
        q.advance_window(45_000 + 40_000);
        q.push(1, far + 1, 3, false);
        assert_eq!(q.pop(), Some((45_000, 1, 2)));
        assert_eq!(q.pop(), Some((far, 1, 1)));
        assert_eq!(q.pop(), Some((far + 1, 1, 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn split_merge_preserves_time_seq_order() {
        // Cross-node events staged out of any particular order, plus direct
        // same-time events, must pop in exactly ascending (time, seq) —
        // i.e. ties resolve by global push order, as in a single queue.
        let mut q: SplitQueue<u32> = SplitQueue::new(3);
        q.advance_window(30_000);
        q.push(0, 30_000, 0, false); // seq 0 (direct pushes may share times)
        q.push(1, 30_000, 1, true); // seq 1, staged
        q.push(0, 30_000, 2, false); // seq 2
        q.push(2, 30_000, 3, true); // seq 3, staged
        q.push(1, 35_000, 4, true); // seq 4, staged
        q.push(0, 35_000, 5, false); // seq 5
        q.advance_window(70_000);
        let mut got = Vec::new();
        while let Some((at, node, v)) = q.pop() {
            got.push((at, node, v));
        }
        assert_eq!(
            got,
            vec![
                (30_000, 0, 0),
                (30_000, 1, 1),
                (30_000, 0, 2),
                (30_000, 2, 3),
                (35_000, 1, 4),
                (35_000, 0, 5),
            ]
        );
    }

    #[test]
    fn split_differential_against_reference_heap() {
        // Random traffic over random target nodes with random cross-staging
        // and periodic window advances must pop in exactly the order of a
        // single reference heap keyed by (time, seq).
        for seed in [3u64, 11, 0xFEED_F00D] {
            let mut rng = Rng(seed);
            let mut q: SplitQueue<u64> = SplitQueue::new(4);
            let mut reference: BinaryHeap<FarEntry<(NodeId, u64)>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..20_000u64 {
                match rng.next() % 10 {
                    0..=5 => {
                        let node = (rng.next() % 4) as NodeId;
                        let delta = match rng.next() % 8 {
                            0 => 0,
                            1..=5 => rng.next() % 200_000,
                            _ => rng.next() % 30_000_000, // beyond horizon
                        };
                        let at = now + delta;
                        // Honor the staging contract: only mark events past
                        // the window edge as cross (the engine's lookahead
                        // guarantees this for real cross-node traffic).
                        let cross = at >= q.window_end() && rng.next().is_multiple_of(2);
                        q.push(node, at, step, cross);
                        reference.push(FarEntry {
                            at,
                            seq,
                            v: (node, step),
                        });
                        seq += 1;
                    }
                    6..=8 => {
                        let got = q.pop();
                        let want = reference.pop().map(|e| {
                            now = e.at;
                            (e.at, e.v.0, e.v.1)
                        });
                        assert_eq!(got, want, "seed {seed} step {step}");
                    }
                    _ => {
                        // Window edge at the current head (as the engine
                        // does), with a fixed lookahead.
                        if let Some((t, _)) = q.next_key() {
                            if t >= q.window_end() {
                                q.advance_window(t + 40_000);
                            }
                        }
                    }
                }
                assert_eq!(q.len(), reference.len());
            }
            while let Some(want) = reference.pop() {
                assert_eq!(
                    q.pop(),
                    Some((want.at, want.v.0, want.v.1)),
                    "seed {seed} drain"
                );
            }
            assert_eq!(q.pop(), None);
        }
    }
}
