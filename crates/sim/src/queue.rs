//! Two-level event queue: a calendar of near-future buckets with a binary
//! heap fallback for far-future events.
//!
//! The simulator's event population is dense and near-sighted: at any
//! instant the queue holds one resume per runnable node plus the messages in
//! flight, and almost every event lands within a few hundred microseconds of
//! `now` (network latencies are 20–440 µs one-way, compute segments are
//! shorter still). A general-purpose [`BinaryHeap`] pays `O(log n)` with
//! branchy sift loops on every operation; a calendar queue turns the common
//! case into an append to an unsorted bucket and an occasional small sort.
//!
//! Layout: time is divided into fixed-width buckets of `2^BUCKET_SHIFT` ns.
//! A ring of [`NUM_BUCKETS`] unsorted buckets covers the near horizon
//! (`cursor .. cursor + NUM_BUCKETS`); events beyond the horizon overflow
//! into a min-heap and are pulled back into the ring as the cursor advances.
//! The bucket currently being drained is kept sorted (descending, so `pop`
//! takes from the back); same-bucket inserts go into it by binary search.
//!
//! Pop order is exactly ascending `(time, sequence)` — identical to the
//! previous `BinaryHeap` engine, which is what keeps the simulation
//! deterministic and bit-compatible with cached results. The differential
//! test at the bottom asserts this against a reference heap on randomized
//! workloads.

use std::collections::BinaryHeap;

use crate::time::Time;

/// log2 of the bucket width in ns (8.2 µs per bucket).
const BUCKET_SHIFT: u32 = 13;
/// Ring size; the near horizon is `NUM_BUCKETS << BUCKET_SHIFT` ≈ 4.2 ms.
const NUM_BUCKETS: usize = 512;

/// A far-future event, ordered ascending by `(time, seq)` through a
/// reversed `Ord` so it can live in a max-[`BinaryHeap`].
struct FarEntry<V> {
    at: Time,
    seq: u64,
    v: V,
}

impl<V> PartialEq for FarEntry<V> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<V> Eq for FarEntry<V> {}
impl<V> PartialOrd for FarEntry<V> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<V> Ord for FarEntry<V> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: the heap is a max-heap, we want the earliest first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Calendar/bucket event queue with heap overflow. `push` tags each event
/// with an internal monotone sequence number; `pop` returns events in
/// ascending `(time, sequence)` order.
pub struct BucketQueue<V> {
    seq: u64,
    len: usize,
    /// Events currently stored in ring buckets (excludes `active` and far).
    near_len: usize,
    /// Unsorted buckets; absolute bucket `b` lives at `b % NUM_BUCKETS` for
    /// `b` in `[cursor, cursor + NUM_BUCKETS)`.
    ring: Vec<Vec<(Time, u64, V)>>,
    /// Next absolute bucket the cursor will open (always `active_bucket + 1`
    /// once the first bucket has been opened).
    cursor: u64,
    /// The bucket being drained, sorted descending by `(time, seq)` so the
    /// next event is at the back.
    active: Vec<(Time, u64, V)>,
    /// Absolute index of the bucket `active` was filled from.
    active_bucket: u64,
    /// Far-future overflow (beyond the ring horizon).
    far: BinaryHeap<FarEntry<V>>,
}

impl<V> Default for BucketQueue<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> BucketQueue<V> {
    /// An empty queue starting at time 0.
    pub fn new() -> Self {
        BucketQueue {
            seq: 0,
            len: 0,
            near_len: 0,
            ring: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            cursor: 1,
            active: Vec::new(),
            active_bucket: 0,
            far: BinaryHeap::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queue `v` at time `at`. Events must not be pushed before the time of
    /// the last popped event (the engine clamps all posts to `now`).
    pub fn push(&mut self, at: Time, v: V) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        self.place(at, seq, v);
    }

    fn place(&mut self, at: Time, seq: u64, v: V) {
        let b = at >> BUCKET_SHIFT;
        debug_assert!(
            b >= self.active_bucket,
            "event pushed into the past: bucket {b} < {}",
            self.active_bucket
        );
        if b == self.active_bucket {
            // The bucket being drained stays sorted: binary-insert.
            let key = (at, seq);
            let pos = self.active.partition_point(|e| (e.0, e.1) > key);
            self.active.insert(pos, (at, seq, v));
        } else if b < self.cursor + NUM_BUCKETS as u64 {
            self.ring[(b % NUM_BUCKETS as u64) as usize].push((at, seq, v));
            self.near_len += 1;
        } else {
            self.far.push(FarEntry { at, seq, v });
        }
    }

    /// Move far events that the advancing horizon now covers into the ring.
    fn drain_far(&mut self) {
        let horizon = self.cursor + NUM_BUCKETS as u64;
        while let Some(top) = self.far.peek() {
            if top.at >> BUCKET_SHIFT >= horizon {
                break;
            }
            let e = self.far.pop().unwrap();
            self.ring[((e.at >> BUCKET_SHIFT) % NUM_BUCKETS as u64) as usize]
                .push((e.at, e.seq, e.v));
            self.near_len += 1;
        }
    }

    /// Remove and return the earliest `(time, value)`, or `None` when empty.
    pub fn pop(&mut self) -> Option<(Time, V)> {
        loop {
            if let Some((at, _, v)) = self.active.pop() {
                self.len -= 1;
                return Some((at, v));
            }
            if self.near_len == 0 {
                let minb = self.far.peek()?.at >> BUCKET_SHIFT;
                // Jump the cursor straight to the earliest far event instead
                // of scanning empty buckets.
                self.cursor = self.cursor.max(minb);
            }
            self.drain_far();
            // Open the next non-empty bucket.
            while self.near_len > 0 {
                let idx = (self.cursor % NUM_BUCKETS as u64) as usize;
                if self.ring[idx].is_empty() {
                    self.cursor += 1;
                    self.drain_far();
                    continue;
                }
                self.active = std::mem::take(&mut self.ring[idx]);
                self.near_len -= self.active.len();
                // Unique (time, seq) keys: unstable sort is deterministic.
                self.active
                    .sort_unstable_by_key(|e| std::cmp::Reverse((e.0, e.1)));
                self.active_bucket = self.cursor;
                self.cursor += 1;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.push(300, "c");
        q.push(100, "a");
        q.push(200, "b");
        assert_eq!(q.pop(), Some((100, "a")));
        assert_eq!(q.pop(), Some((200, "b")));
        assert_eq!(q.pop(), Some((300, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_push_order() {
        let mut q = BucketQueue::new();
        for i in 0..10u32 {
            q.push(500, i);
        }
        for i in 0..10u32 {
            assert_eq!(q.pop(), Some((500, i)));
        }
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        let mut q = BucketQueue::new();
        let far = (NUM_BUCKETS as u64 + 10) << BUCKET_SHIFT;
        q.push(far, "far");
        q.push(10, "near");
        assert_eq!(q.pop(), Some((10, "near")));
        assert_eq!(q.pop(), Some((far, "far")));
    }

    #[test]
    fn interleaved_push_pop_within_one_bucket() {
        let mut q = BucketQueue::new();
        q.push(10, 0u32);
        q.push(50, 1);
        assert_eq!(q.pop(), Some((10, 0)));
        // Insert into the bucket currently being drained.
        q.push(20, 2);
        q.push(15, 3);
        assert_eq!(q.pop(), Some((15, 3)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((50, 1)));
    }

    #[test]
    fn cursor_jumps_over_long_empty_gaps() {
        let mut q = BucketQueue::new();
        q.push(5, "a");
        assert_eq!(q.pop(), Some((5, "a")));
        // Next event is millions of buckets away: pop must not scan them.
        let t = 1u64 << 40;
        q.push(t, "b");
        q.push(t + 1, "c");
        assert_eq!(q.pop(), Some((t, "b")));
        assert_eq!(q.pop(), Some((t + 1, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn far_events_merge_correctly_with_near_ones() {
        // A far event that becomes near as the cursor advances must
        // interleave in exact time order with ring events.
        let mut q = BucketQueue::new();
        let horizon = (NUM_BUCKETS as u64) << BUCKET_SHIFT;
        q.push(horizon + 500, 1u32); // far at push time
        q.push(100, 0);
        assert_eq!(q.pop(), Some((100, 0)));
        q.push(horizon + 600, 2); // near now? still beyond cursor+NB: far
        q.push(horizon + 200, 3);
        assert_eq!(q.pop(), Some((horizon + 200, 3)));
        assert_eq!(q.pop(), Some((horizon + 500, 1)));
        assert_eq!(q.pop(), Some((horizon + 600, 2)));
    }

    /// Deterministic xorshift for the differential test.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }
    }

    #[test]
    fn differential_against_reference_heap() {
        // Random interleaved push/pop traffic, compared op-for-op against a
        // reference BinaryHeap with explicit (time, seq) ordering. Spans
        // bucket boundaries, the far horizon, ties, and monotone `now`
        // clamping — the exact contract the engine relies on.
        for seed in [1u64, 7, 0xDEAD_BEEF, 0x1234_5678_9ABC] {
            let mut rng = Rng(seed);
            let mut q = BucketQueue::new();
            let mut reference: BinaryHeap<FarEntry<u64>> = BinaryHeap::new();
            let mut seq = 0u64;
            let mut now = 0u64;
            for step in 0..20_000 {
                if !rng.next().is_multiple_of(3) || reference.is_empty() {
                    // Push at now + a skewed delta: mostly near, sometimes
                    // far beyond the horizon.
                    let delta = match rng.next() % 10 {
                        0 => 0,
                        1..=6 => rng.next() % 300_000,   // near
                        7 | 8 => rng.next() % 4_000_000, // mid
                        _ => rng.next() % 50_000_000,    // beyond horizon
                    };
                    let at = now + delta;
                    q.push(at, step);
                    reference.push(FarEntry { at, seq, v: step });
                    seq += 1;
                } else {
                    let got = q.pop();
                    let want = reference.pop().map(|e| {
                        now = e.at;
                        (e.at, e.v)
                    });
                    assert_eq!(got, want, "seed {seed} step {step}");
                }
                assert_eq!(q.len(), reference.len());
            }
            // Drain both completely.
            while let Some(want) = reference.pop() {
                assert_eq!(q.pop(), Some((want.at, want.v)), "seed {seed} drain");
            }
            assert_eq!(q.pop(), None);
        }
    }
}
