//! Stateless deterministic randomness shared across the workspace.
//!
//! Random decisions (fabric fault rolls, mutation-site selection in the
//! checker's self-tests) must not depend on the order the simulator happens
//! to process events in, only on the decision's identity — otherwise
//! resuming, caching, or re-running a configuration could perturb the
//! schedule. So instead of a stateful generator there is a single hash:
//! every roll is `mix` over `(seed, src, dst, seq, attempt)` plus a
//! per-decision lane.

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic roll for one decision `lane` about one frame identity.
pub fn roll(seed: u64, lane: u64, src: u64, dst: u64, seq: u64, attempt: u64) -> u64 {
    mix64(seed ^ mix64(lane ^ mix64(src ^ mix64(dst ^ mix64(seq ^ mix64(attempt))))))
}

/// Whether a roll hits a per-million rate.
pub fn hit(r: u64, ppm: u32) -> bool {
    r % 1_000_000 < u64::from(ppm)
}

/// Fold `x` into a running SplitMix64-based fingerprint. Order-sensitive:
/// `fold64(fold64(a, x), y) != fold64(fold64(a, y), x)` in general, so
/// sequences hash by structure. Commutative combination (e.g. hashing a
/// `HashMap`'s entries independent of iteration order) is done by XORing
/// per-entry fingerprints instead.
pub fn fold64(acc: u64, x: u64) -> u64 {
    mix64(acc ^ mix64(x))
}

/// A stable `std::hash::Hasher` over [`mix64`], for state fingerprints that
/// must not depend on the standard library's hasher (whose output may change
/// between Rust releases). Usable with `#[derive(Hash)]` types.
#[derive(Debug, Clone, Default)]
pub struct StableHasher(u64);

impl StableHasher {
    /// Fresh hasher with a zero seed.
    pub fn new() -> Self {
        StableHasher(0)
    }

    /// Hash one `Hash` value to a stable fingerprint.
    pub fn fingerprint<T: std::hash::Hash + ?Sized>(v: &T) -> u64 {
        use std::hash::Hasher;
        let mut h = StableHasher::new();
        v.hash(&mut h);
        h.finish()
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        mix64(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = fold64(self.0, u64::from_le_bytes(word));
        }
        // Fold the length so "ab"+"c" and "a"+"bc" differ.
        self.0 = fold64(self.0, bytes.len() as u64);
    }

    fn write_u64(&mut self, i: u64) {
        self.0 = fold64(self.0, i);
    }

    fn write_usize(&mut self, i: usize) {
        self.0 = fold64(self.0, i as u64);
    }

    fn write_u8(&mut self, i: u8) {
        self.0 = fold64(self.0, u64::from(i));
    }

    fn write_u32(&mut self, i: u32) {
        self.0 = fold64(self.0, u64::from(i));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolls_are_deterministic_and_lane_independent() {
        let a = roll(1, 0, 2, 3, 4, 0);
        assert_eq!(a, roll(1, 0, 2, 3, 4, 0));
        assert_ne!(a, roll(1, 1, 2, 3, 4, 0)); // lane changes the roll
        assert_ne!(a, roll(2, 0, 2, 3, 4, 0)); // seed changes the roll
        assert_ne!(a, roll(1, 0, 2, 3, 4, 1)); // retransmits re-roll
    }

    #[test]
    fn hit_rates_are_approximately_calibrated() {
        // 100k distinct frame identities at 10% should hit within ±10%.
        let mut hits = 0u32;
        for seq in 0..100_000u64 {
            if hit(roll(99, 0, 1, 2, seq, 0), 100_000) {
                hits += 1;
            }
        }
        assert!((9_000..=11_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn fold_is_order_sensitive_and_stable() {
        let a = fold64(fold64(0, 1), 2);
        assert_eq!(a, fold64(fold64(0, 1), 2));
        assert_ne!(a, fold64(fold64(0, 2), 1));
    }

    #[test]
    fn stable_hasher_distinguishes_structure() {
        let ab_c = StableHasher::fingerprint(&("ab", "c"));
        let a_bc = StableHasher::fingerprint(&("a", "bc"));
        assert_ne!(ab_c, a_bc);
        assert_eq!(
            StableHasher::fingerprint(&vec![1u64, 2, 3]),
            StableHasher::fingerprint(&vec![1u64, 2, 3])
        );
        assert_ne!(
            StableHasher::fingerprint(&vec![1u64, 2, 3]),
            StableHasher::fingerprint(&vec![1u64, 3, 2])
        );
    }

    #[test]
    fn zero_rate_never_hits_and_full_rate_always_hits() {
        for seq in 0..1_000u64 {
            let r = roll(5, 2, 0, 1, seq, 0);
            assert!(!hit(r, 0));
            assert!(hit(r, 1_000_000));
        }
    }
}
