//! Virtual time units.
//!
//! All virtual time in the simulator is kept in nanoseconds as a `u64`. At
//! nanosecond resolution a `u64` covers ~584 years of virtual time, far more
//! than any run needs, and integer time keeps the event order exact (no
//! floating-point tie ambiguity).

/// Virtual time in nanoseconds.
pub type Time = u64;

/// One microsecond of virtual time.
pub const MICROS: Time = 1_000;

/// One millisecond of virtual time.
pub const MILLIS: Time = 1_000_000;

/// One second of virtual time.
pub const SECS: Time = 1_000_000_000;

/// Formats a virtual time compactly for human-readable reports
/// (e.g. `1.234ms`, `56.7us`, `3.21s`).
pub fn format_time(t: Time) -> String {
    if t >= SECS {
        format!("{:.3}s", t as f64 / SECS as f64)
    } else if t >= MILLIS {
        format!("{:.3}ms", t as f64 / MILLIS as f64)
    } else if t >= MICROS {
        format!("{:.2}us", t as f64 / MICROS as f64)
    } else {
        format!("{t}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_each_scale() {
        assert_eq!(format_time(5), "5ns");
        assert_eq!(format_time(1_500), "1.50us");
        assert_eq!(format_time(2_500_000), "2.500ms");
        assert_eq!(format_time(3_210_000_000), "3.210s");
    }

    #[test]
    fn unit_ratios() {
        assert_eq!(MILLIS / MICROS, 1_000);
        assert_eq!(SECS / MILLIS, 1_000);
    }
}
