//! Aggregate statistics from the paper's §5.5: relative efficiency and
//! harmonic means over applications (Tables 16 and 17).

use std::collections::BTreeMap;

/// Harmonic mean of a slice of positive values.
///
/// Returns 0.0 for an empty slice. Any non-positive value makes the mean 0.0
/// (the paper's HM of relative efficiencies is only meaningful for positive
/// entries; a zero entry denotes a run that failed entirely).
pub fn harmonic_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut denom = 0.0;
    for &v in values {
        if v <= 0.0 {
            return 0.0;
        }
        denom += 1.0 / v;
    }
    values.len() as f64 / denom
}

/// A matrix of speedups indexed by (application, protocol, granularity),
/// implementing the paper's relative-efficiency aggregation.
///
/// `RE(a, p, g) = speedup(a, p, g) / MAX(a)` where `MAX(a)` is the best
/// speedup of application `a` over all combinations. Table 16 uses one
/// implementation per application; Table 17 folds multiple versions of an
/// application into one by taking, for each (p, g), the best speedup among
/// versions (`Max(a, p, g)`), and for `MAX(a)` the best over all versions and
/// combinations.
#[derive(Debug, Default, Clone)]
pub struct EfficiencyMatrix {
    /// (app, protocol, granularity) -> speedup. `app` here is the *fold key*:
    /// versions of the same application share a key in Table 17 mode.
    cells: BTreeMap<(String, String, usize), f64>,
}

impl EfficiencyMatrix {
    /// Create an empty matrix.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a speedup for `(app, protocol, granularity)`. If a value is
    /// already present, the larger speedup wins (this is what folds multiple
    /// versions of one application into `Max(a, p, g)`).
    pub fn record(&mut self, app: &str, protocol: &str, granularity: usize, speedup: f64) {
        let key = (app.to_string(), protocol.to_string(), granularity);
        let e = self.cells.entry(key).or_insert(0.0);
        if speedup > *e {
            *e = speedup;
        }
    }

    /// Distinct application fold keys, sorted.
    pub fn apps(&self) -> Vec<String> {
        let mut v: Vec<String> = self.cells.keys().map(|k| k.0.clone()).collect();
        v.dedup();
        v.sort();
        v.dedup();
        v
    }

    /// Best speedup over all combinations for one application.
    pub fn max_speedup(&self, app: &str) -> f64 {
        self.cells
            .iter()
            .filter(|(k, _)| k.0 == app)
            .map(|(_, &v)| v)
            .fold(0.0, f64::max)
    }

    /// Relative efficiency of one cell.
    pub fn re(&self, app: &str, protocol: &str, granularity: usize) -> Option<f64> {
        let v = *self
            .cells
            .get(&(app.to_string(), protocol.to_string(), granularity))?;
        let max = self.max_speedup(app);
        if max <= 0.0 {
            return Some(0.0);
        }
        Some(v / max)
    }

    /// HM of RE over all applications for a fixed (protocol, granularity).
    ///
    /// Applications missing this combination contribute RE = 0 (which, per
    /// [`harmonic_mean`], zeroes the mean — the paper notes missing runs as
    /// failures at that combination).
    pub fn hm_fixed(&self, protocol: &str, granularity: usize) -> f64 {
        let res: Vec<f64> = self
            .apps()
            .iter()
            .map(|a| self.re(a, protocol, granularity).unwrap_or(0.0))
            .collect();
        harmonic_mean(&res)
    }

    /// HM of RE for a fixed protocol, choosing the best granularity
    /// per application (the paper's `g_best` column).
    pub fn hm_best_granularity(&self, protocol: &str, granularities: &[usize]) -> f64 {
        let res: Vec<f64> = self
            .apps()
            .iter()
            .map(|a| {
                granularities
                    .iter()
                    .filter_map(|&g| self.re(a, protocol, g))
                    .fold(0.0, f64::max)
            })
            .collect();
        harmonic_mean(&res)
    }

    /// HM of RE for a fixed granularity, choosing the best protocol per
    /// application (the paper's `p_best` row).
    pub fn hm_best_protocol(&self, granularity: usize, protocols: &[&str]) -> f64 {
        let res: Vec<f64> = self
            .apps()
            .iter()
            .map(|a| {
                protocols
                    .iter()
                    .filter_map(|p| self.re(a, p, granularity))
                    .fold(0.0, f64::max)
            })
            .collect();
        harmonic_mean(&res)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hm_of_equal_values_is_the_value() {
        assert!((harmonic_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hm_is_dominated_by_small_values() {
        let hm = harmonic_mean(&[1.0, 0.1]);
        assert!((hm - 2.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn hm_empty_and_zero() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert_eq!(harmonic_mean(&[1.0, 0.0]), 0.0);
    }

    #[test]
    fn re_normalizes_by_app_max() {
        let mut m = EfficiencyMatrix::new();
        m.record("lu", "sc", 64, 5.0);
        m.record("lu", "sc", 4096, 10.0);
        m.record("lu", "hlrc", 4096, 8.0);
        assert!((m.re("lu", "sc", 64).unwrap() - 0.5).abs() < 1e-12);
        assert!((m.re("lu", "sc", 4096).unwrap() - 1.0).abs() < 1e-12);
        assert!((m.re("lu", "hlrc", 4096).unwrap() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn record_keeps_best_version() {
        let mut m = EfficiencyMatrix::new();
        m.record("ocean", "sc", 64, 2.0);
        m.record("ocean", "sc", 64, 7.0); // better version folds in
        m.record("ocean", "sc", 64, 3.0); // worse version ignored
        assert!((m.max_speedup("ocean") - 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_time_cells_zero_the_aggregate() {
        // A failed run records speedup 0 (zero-time cell). Its RE is 0,
        // which zeroes any harmonic mean that includes it — one failure at
        // a combination sinks that whole (protocol, granularity) column.
        let mut m = EfficiencyMatrix::new();
        m.record("lu", "sc", 64, 8.0);
        m.record("fft", "sc", 64, 0.0);
        assert_eq!(m.re("fft", "sc", 64), Some(0.0));
        assert_eq!(m.hm_fixed("sc", 64), 0.0);
        // An application whose every cell is zero has RE 0 (not NaN).
        let mut z = EfficiencyMatrix::new();
        z.record("dead", "sc", 64, 0.0);
        assert_eq!(z.max_speedup("dead"), 0.0);
        assert_eq!(z.re("dead", "sc", 64), Some(0.0));
    }

    #[test]
    fn missing_combination_zeroes_hm_fixed() {
        // "fft" never ran at hlrc@4096: the paper counts that as a failure
        // at the combination, so the fixed-cell HM is 0 while columns where
        // every app has a cell are unaffected.
        let mut m = EfficiencyMatrix::new();
        m.record("lu", "sc", 64, 4.0);
        m.record("lu", "hlrc", 4096, 8.0);
        m.record("fft", "sc", 64, 6.0);
        assert_eq!(m.hm_fixed("hlrc", 4096), 0.0);
        assert!(m.hm_fixed("sc", 64) > 0.0);
    }

    #[test]
    fn single_app_means_equal_its_re() {
        // With one application every aggregate collapses to that app's RE.
        let mut m = EfficiencyMatrix::new();
        m.record("lu", "sc", 64, 5.0);
        m.record("lu", "sc", 4096, 10.0);
        m.record("lu", "hlrc", 4096, 4.0);
        assert!((m.hm_fixed("sc", 64) - 0.5).abs() < 1e-12);
        assert!((m.hm_fixed("sc", 4096) - 1.0).abs() < 1e-12);
        assert!((m.hm_best_granularity("hlrc", &[64, 4096]) - 0.4).abs() < 1e-12);
        assert!((m.hm_best_protocol(4096, &["sc", "hlrc"]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn re_of_unrecorded_cell_is_none() {
        let mut m = EfficiencyMatrix::new();
        m.record("lu", "sc", 64, 5.0);
        assert_eq!(m.re("lu", "hlrc", 64), None);
        assert_eq!(m.re("fft", "sc", 64), None);
    }

    #[test]
    fn best_protocol_and_granularity_selection() {
        let mut m = EfficiencyMatrix::new();
        for (app, sc64, hlrc4096) in [("a", 10.0, 6.0), ("b", 3.0, 9.0)] {
            m.record(app, "sc", 64, sc64);
            m.record(app, "hlrc", 4096, hlrc4096);
        }
        // best protocol at 64 = sc for both apps; app b's RE = 3/9.
        let hm = m.hm_best_protocol(64, &["sc", "hlrc"]);
        assert!((hm - harmonic_mean(&[1.0, 3.0 / 9.0])).abs() < 1e-12);
        // best granularity for hlrc: app a RE=0.6, app b RE=1.0
        let hm2 = m.hm_best_granularity("hlrc", &[64, 4096]);
        assert!((hm2 - harmonic_mean(&[0.6, 1.0])).abs() < 1e-12);
    }
}
