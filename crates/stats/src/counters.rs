//! Event counters collected during a simulated run.

use serde::{Deserialize, Serialize};

/// Per-node protocol event counters.
///
/// All counters are cumulative over one run. "Remote" faults are faults that
/// required communication; "local" faults are access-control transitions that
/// were resolved without messages (e.g. HLRC twinning an already-present
/// block, or SW-LRC re-enabling write access after a release downgrade).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Read access faults (block not readable locally), remote.
    pub read_faults: u64,
    /// Write access faults that required communication.
    pub write_faults: u64,
    /// Write faults resolved locally (twin creation / re-enable).
    pub local_write_faults: u64,
    /// Messages sent from this node.
    pub msgs_sent: u64,
    /// Control bytes sent (headers, requests, acks, write notices).
    pub ctrl_bytes: u64,
    /// Data payload bytes sent (block fetches, write-backs, diffs).
    pub data_bytes: u64,
    /// Block fetches served *to* other nodes by this node.
    pub fetches_served: u64,
    /// Twins created (HLRC).
    pub twins_created: u64,
    /// Diffs created at releases (HLRC).
    pub diffs_created: u64,
    /// Total bytes of diff payload produced (HLRC).
    pub diff_bytes: u64,
    /// Diffs applied at this node's homes (HLRC).
    pub diffs_applied: u64,
    /// Write notices sent (piggybacked counts included).
    pub write_notices_sent: u64,
    /// Write notices received and processed at acquires.
    pub write_notices_recv: u64,
    /// Blocks invalidated at this node (eager for SC, acquire-time for LRC).
    pub invalidations: u64,
    /// Lock acquires performed by this node.
    pub lock_acquires: u64,
    /// Lock acquires that needed remote communication.
    pub remote_lock_acquires: u64,
    /// Barrier episodes this node participated in.
    pub barriers: u64,
    /// Virtual ns spent waiting on lock acquisition.
    pub lock_wait_ns: u64,
    /// Virtual ns spent waiting at barriers.
    pub barrier_wait_ns: u64,
    /// Virtual ns spent stalled in read faults.
    pub read_stall_ns: u64,
    /// Virtual ns spent stalled in write faults.
    pub write_stall_ns: u64,
    /// Virtual ns of pure application computation charged.
    pub compute_ns: u64,
    /// Extra virtual ns charged for polling instrumentation.
    pub poll_overhead_ns: u64,
    /// Asynchronous messages serviced via interrupt (signal cost paid).
    pub interrupts_taken: u64,
    /// Virtual ns this node spent servicing remote requests (occupancy).
    pub service_ns: u64,
    /// Peak bytes held in twins at this node (HLRC memory overhead; the
    /// paper lists memory utilization as unexamined future work).
    pub twin_bytes_peak: u64,
}

impl Counters {
    /// Field-wise sum, for aggregating per-node counters into run totals.
    pub fn add(&mut self, o: &Counters) {
        self.read_faults += o.read_faults;
        self.write_faults += o.write_faults;
        self.local_write_faults += o.local_write_faults;
        self.msgs_sent += o.msgs_sent;
        self.ctrl_bytes += o.ctrl_bytes;
        self.data_bytes += o.data_bytes;
        self.fetches_served += o.fetches_served;
        self.twins_created += o.twins_created;
        self.diffs_created += o.diffs_created;
        self.diff_bytes += o.diff_bytes;
        self.diffs_applied += o.diffs_applied;
        self.write_notices_sent += o.write_notices_sent;
        self.write_notices_recv += o.write_notices_recv;
        self.invalidations += o.invalidations;
        self.lock_acquires += o.lock_acquires;
        self.remote_lock_acquires += o.remote_lock_acquires;
        self.barriers += o.barriers;
        self.lock_wait_ns += o.lock_wait_ns;
        self.barrier_wait_ns += o.barrier_wait_ns;
        self.read_stall_ns += o.read_stall_ns;
        self.write_stall_ns += o.write_stall_ns;
        self.compute_ns += o.compute_ns;
        self.poll_overhead_ns += o.poll_overhead_ns;
        self.interrupts_taken += o.interrupts_taken;
        self.service_ns += o.service_ns;
        self.twin_bytes_peak = self.twin_bytes_peak.max(o.twin_bytes_peak);
    }

    /// Total bytes moved on the network (control + data).
    pub fn total_traffic(&self) -> u64 {
        self.ctrl_bytes + self.data_bytes
    }
}

/// Statistics for one complete run: per-node counters plus timing results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunStats {
    /// One entry per node.
    pub per_node: Vec<Counters>,
    /// Virtual time at which the parallel phase completed (max over nodes).
    pub parallel_time_ns: u64,
    /// Modeled time of the sequential execution of the same program.
    pub sequential_time_ns: u64,
}

impl RunStats {
    /// Field-wise sum over all nodes.
    pub fn totals(&self) -> Counters {
        let mut t = Counters::default();
        for c in &self.per_node {
            t.add(c);
        }
        t
    }

    /// Speedup of the parallel run over the modeled sequential run.
    pub fn speedup(&self) -> f64 {
        if self.parallel_time_ns == 0 {
            return 0.0;
        }
        self.sequential_time_ns as f64 / self.parallel_time_ns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_fieldwise() {
        let mut a = Counters { read_faults: 1, data_bytes: 10, ..Default::default() };
        let b = Counters { read_faults: 2, ctrl_bytes: 5, ..Default::default() };
        a.add(&b);
        assert_eq!(a.read_faults, 3);
        assert_eq!(a.data_bytes, 10);
        assert_eq!(a.ctrl_bytes, 5);
        assert_eq!(a.total_traffic(), 15);
    }

    #[test]
    fn speedup_ratio() {
        let s = RunStats {
            per_node: vec![Counters::default()],
            parallel_time_ns: 250,
            sequential_time_ns: 1000,
        };
        assert!((s.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn totals_sum_all_nodes() {
        let s = RunStats {
            per_node: (0..4)
                .map(|i| Counters { write_faults: i as u64, ..Default::default() })
                .collect(),
            parallel_time_ns: 1,
            sequential_time_ns: 1,
        };
        assert_eq!(s.totals().write_faults, 6);
    }
}
