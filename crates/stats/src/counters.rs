//! Event counters collected during a simulated run.

use dsm_json::Value;

/// Expands to the `Counters` struct plus its field-generic helpers, so the
/// field list exists in exactly one place: adding a counter here updates
/// `add`, JSON encode/decode, and `FIELD_NAMES` together. Merge modes:
/// `sum` for cumulative counters, `max` for high-water marks.
macro_rules! define_counters {
    ( $( $(#[$attr:meta])* $field:ident : $merge:tt ),+ $(,)? ) => {
        /// Per-node protocol event counters.
        ///
        /// All counters are cumulative over one run. "Remote" faults are
        /// faults that required communication; "local" faults are
        /// access-control transitions that were resolved without messages
        /// (e.g. HLRC twinning an already-present block, or SW-LRC
        /// re-enabling write access after a release downgrade).
        #[derive(Debug, Default, Clone, PartialEq, Eq)]
        pub struct Counters {
            $( $(#[$attr])* pub $field: u64, )+
        }

        impl Counters {
            /// Every counter field name, in declaration order.
            pub const FIELD_NAMES: &'static [&'static str] =
                &[ $( stringify!($field) ),+ ];

            /// Field-wise merge (sums, except high-water marks which take
            /// the max), for aggregating per-node counters into run totals.
            pub fn add(&mut self, o: &Counters) {
                $( merge_field!(self.$field, o.$field, $merge); )+
            }

            /// Encode as a JSON object with one key per field.
            pub fn to_json(&self) -> Value {
                let mut v = Value::obj();
                $( v.set(stringify!($field), self.$field); )+
                v
            }

            /// Decode from a JSON object; missing fields default to zero.
            pub fn from_json(v: &Value) -> Counters {
                Counters {
                    $( $field: v.u64_field(stringify!($field)).unwrap_or(0), )+
                }
            }
        }
    };
}

macro_rules! merge_field {
    ($a:expr, $b:expr, sum) => {
        $a += $b
    };
    ($a:expr, $b:expr, max) => {
        $a = $a.max($b)
    };
}

define_counters! {
    /// Read access faults (block not readable locally), remote.
    read_faults: sum,
    /// Write access faults that required communication.
    write_faults: sum,
    /// Write faults resolved locally (twin creation / re-enable).
    local_write_faults: sum,
    /// Messages sent from this node.
    msgs_sent: sum,
    /// Control bytes sent (headers, requests, acks, write notices).
    ctrl_bytes: sum,
    /// Data payload bytes sent (block fetches, write-backs, diffs).
    data_bytes: sum,
    /// Block fetches served *to* other nodes by this node.
    fetches_served: sum,
    /// Twins created (HLRC).
    twins_created: sum,
    /// Diffs created at releases (HLRC).
    diffs_created: sum,
    /// Total bytes of diff payload produced (HLRC).
    diff_bytes: sum,
    /// Diffs applied at this node's homes (HLRC).
    diffs_applied: sum,
    /// Write notices sent (piggybacked counts included).
    write_notices_sent: sum,
    /// Write notices received and processed at acquires.
    write_notices_recv: sum,
    /// Blocks invalidated at this node (eager for SC, acquire-time for LRC).
    invalidations: sum,
    /// Tardis: read leases renewed header-only at this node's homes (the
    /// requester already held the current data, so no payload moved).
    lease_renewals: sum,
    /// Tardis: reads that found their lease expired against the program
    /// timestamp and had to fault back to the home.
    lease_expiries: sum,
    /// Tardis: exclusive write grants whose timestamp had to jump past
    /// outstanding read leases (`rts > wts` at grant time).
    wts_bumps: sum,
    /// Lock acquires performed by this node.
    lock_acquires: sum,
    /// Lock acquires that needed remote communication.
    remote_lock_acquires: sum,
    /// Barrier episodes this node participated in.
    barriers: sum,
    /// Virtual ns spent waiting on lock acquisition.
    lock_wait_ns: sum,
    /// Virtual ns spent waiting at barriers (arrival to release, excluding
    /// the local release actions charged to `proto_local_ns`).
    barrier_wait_ns: sum,
    /// Virtual ns spent stalled in read faults.
    read_stall_ns: sum,
    /// Virtual ns spent stalled in write faults.
    write_stall_ns: sum,
    /// Virtual ns of pure application computation charged.
    compute_ns: sum,
    /// Extra virtual ns charged for polling instrumentation.
    poll_overhead_ns: sum,
    /// Virtual ns of local protocol actions run on the application thread:
    /// locally-resolved faults, release-time diffing/notice generation at
    /// lock releases and barrier arrivals.
    proto_local_ns: sum,
    /// Virtual ns by which remote-request service occupancy extended this
    /// node's own compute segments (time "stolen" from the application by
    /// the protocol handler while the node was otherwise runnable).
    occupancy_stolen_ns: sum,
    /// Asynchronous messages serviced via interrupt (signal cost paid).
    interrupts_taken: sum,
    /// Virtual ns this node spent servicing remote requests (occupancy).
    service_ns: sum,
    /// Peak bytes held in twins at this node (HLRC memory overhead; the
    /// paper lists memory utilization as unexamined future work).
    twin_bytes_peak: max,
    /// Fabric: data-frame transmissions from this node (originals,
    /// retransmissions, and forced final attempts; zero on the ideal
    /// fabric).
    fabric_frames: sum,
    /// Fabric: timeout-driven retransmissions from this node.
    fabric_retries: sum,
    /// Fabric: transmissions whose retry budget ran out, forcing the
    /// injector-bypassing reliable attempt.
    fabric_exhausted: sum,
    /// Fabric: frames the injector dropped on this node's sends.
    fabric_drops: sum,
    /// Fabric: duplicate copies the injector added to this node's sends.
    fabric_dups: sum,
    /// Fabric: duplicate frames this node's receive path discarded.
    fabric_dup_drops: sum,
    /// Fabric: acknowledgement frames this node generated.
    fabric_acks: sum,
    /// Fabric: virtual ns this node's frames waited behind busy NI send
    /// and receive engines (queuing delay under contention).
    fabric_queue_ns: sum,
}

impl Counters {
    /// Total bytes moved on the network (control + data).
    pub fn total_traffic(&self) -> u64 {
        self.ctrl_bytes + self.data_bytes
    }
}

/// Statistics for one complete run: per-node counters plus timing results.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// One entry per node.
    pub per_node: Vec<Counters>,
    /// Virtual time at which the parallel phase completed (max over nodes).
    pub parallel_time_ns: u64,
    /// Modeled time of the sequential execution of the same program.
    pub sequential_time_ns: u64,
    /// Simulator events processed to produce this run (a host-side
    /// throughput metric — not part of the modeled results; deterministic
    /// for a given configuration, so cached results stay comparable).
    pub sim_events: u64,
}

impl RunStats {
    /// Field-wise sum over all nodes.
    pub fn totals(&self) -> Counters {
        let mut t = Counters::default();
        for c in &self.per_node {
            t.add(c);
        }
        t
    }

    /// Speedup of the parallel run over the modeled sequential run.
    pub fn speedup(&self) -> f64 {
        if self.parallel_time_ns == 0 {
            return 0.0;
        }
        self.sequential_time_ns as f64 / self.parallel_time_ns as f64
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set(
            "per_node",
            Value::Arr(self.per_node.iter().map(Counters::to_json).collect()),
        );
        v.set("parallel_time_ns", self.parallel_time_ns);
        v.set("sequential_time_ns", self.sequential_time_ns);
        v.set("sim_events", self.sim_events);
        v
    }

    /// Decode from a JSON object; `None` if the shape is wrong.
    pub fn from_json(v: &Value) -> Option<RunStats> {
        let per_node = v
            .get("per_node")?
            .as_arr()?
            .iter()
            .map(Counters::from_json)
            .collect();
        Some(RunStats {
            per_node,
            parallel_time_ns: v.u64_field("parallel_time_ns")?,
            sequential_time_ns: v.u64_field("sequential_time_ns")?,
            // Absent in pre-v3 cached results: default to 0.
            sim_events: v.u64_field("sim_events").unwrap_or(0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_fieldwise() {
        let mut a = Counters {
            read_faults: 1,
            data_bytes: 10,
            ..Default::default()
        };
        let b = Counters {
            read_faults: 2,
            ctrl_bytes: 5,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.read_faults, 3);
        assert_eq!(a.data_bytes, 10);
        assert_eq!(a.ctrl_bytes, 5);
        assert_eq!(a.total_traffic(), 15);
    }

    #[test]
    fn add_takes_max_of_high_water_marks() {
        let mut a = Counters {
            twin_bytes_peak: 100,
            ..Default::default()
        };
        a.add(&Counters {
            twin_bytes_peak: 70,
            ..Default::default()
        });
        assert_eq!(a.twin_bytes_peak, 100);
        a.add(&Counters {
            twin_bytes_peak: 130,
            ..Default::default()
        });
        assert_eq!(a.twin_bytes_peak, 130);
    }

    #[test]
    fn speedup_ratio() {
        let s = RunStats {
            per_node: vec![Counters::default()],
            parallel_time_ns: 250,
            sequential_time_ns: 1000,
            sim_events: 0,
        };
        assert!((s.speedup() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn totals_sum_all_nodes() {
        let s = RunStats {
            per_node: (0..4)
                .map(|i| Counters {
                    write_faults: i as u64,
                    ..Default::default()
                })
                .collect(),
            parallel_time_ns: 1,
            sequential_time_ns: 1,
            sim_events: 0,
        };
        assert_eq!(s.totals().write_faults, 6);
    }

    #[test]
    fn totals_cover_every_field() {
        // Build nodes whose every field is non-zero via the JSON decoder
        // (the field list lives in one place, so this stays exhaustive as
        // counters are added), then check the merge over all of them.
        let all = |x: u64| {
            let mut v = Value::obj();
            for name in Counters::FIELD_NAMES {
                v.set(name, x);
            }
            Counters::from_json(&v)
        };
        let s = RunStats {
            per_node: vec![all(1), all(2), all(4)],
            parallel_time_ns: 1,
            sequential_time_ns: 1,
            sim_events: 0,
        };
        let t = s.totals().to_json();
        for name in Counters::FIELD_NAMES {
            let expect = if *name == "twin_bytes_peak" { 4 } else { 7 };
            assert_eq!(t.u64_field(name), Some(expect), "field {name}");
        }
    }

    #[test]
    fn zero_parallel_time_gives_zero_speedup() {
        let s = RunStats {
            per_node: Vec::new(),
            parallel_time_ns: 0,
            sequential_time_ns: 1000,
            sim_events: 0,
        };
        assert_eq!(s.speedup(), 0.0);
        assert_eq!(s.totals(), Counters::default());
    }

    #[test]
    fn json_roundtrip_counters() {
        let c = Counters {
            msgs_sent: 42,
            compute_ns: u64::from(u32::MAX) * 1000,
            twin_bytes_peak: 7,
            ..Default::default()
        };
        let text = c.to_json().to_string();
        let back = Counters::from_json(&Value::parse(&text).unwrap());
        assert_eq!(back, c);
        // every declared field appears in the encoding
        for name in Counters::FIELD_NAMES {
            assert!(text.contains(&format!("\"{name}\"")), "missing {name}");
        }
    }

    #[test]
    fn json_roundtrip_run_stats() {
        let s = RunStats {
            per_node: vec![
                Counters {
                    read_faults: 3,
                    ..Default::default()
                },
                Counters {
                    msgs_sent: 9,
                    ..Default::default()
                },
            ],
            parallel_time_ns: 123,
            sequential_time_ns: 456,
            sim_events: 0,
        };
        let text = s.to_json().to_string();
        let back = RunStats::from_json(&Value::parse(&text).unwrap()).unwrap();
        assert_eq!(back.per_node, s.per_node);
        assert_eq!(back.parallel_time_ns, 123);
        assert_eq!(back.sequential_time_ns, 456);
    }

    #[test]
    fn from_json_defaults_missing_fields_to_zero() {
        let v = Value::parse(r#"{"msgs_sent":5}"#).unwrap();
        let c = Counters::from_json(&v);
        assert_eq!(c.msgs_sent, 5);
        assert_eq!(c.read_faults, 0);
    }
}
