#![warn(missing_docs)]

//! Run statistics, aggregate math and table formatting for the DSM
//! reproduction.
//!
//! Every protocol event of interest is counted in a [`Counters`] struct, one
//! per node per run, so the paper's fault/traffic tables (Tables 3–15) can be
//! regenerated directly. The aggregate math module implements the paper's
//! §5.5 methodology: relative efficiency `RE(a, p, g)` and harmonic means
//! over applications (Tables 16 and 17).

pub mod agg;
pub mod counters;
pub mod region;
pub mod table;

pub use agg::{harmonic_mean, EfficiencyMatrix};
pub use counters::{Counters, RunStats};
pub use region::RegionCounters;
pub use table::Table;
