//! Per-region event counters for mixed-mode runs.

use dsm_json::Value;

/// Counters attributed to one shared-memory region (summed over nodes).
///
/// These are the region-resolved subset of [`crate::Counters`]: faults are
/// attributed to the region of the faulting block, and traffic to the region
/// of the block a message concerns (sync-only messages carry no block and
/// are not attributed).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RegionCounters {
    /// Remote read faults on the region's blocks.
    pub read_faults: u64,
    /// Remote write faults on the region's blocks.
    pub write_faults: u64,
    /// Locally-resolved write faults (twinning / write re-enable).
    pub local_faults: u64,
    /// Invalidations of the region's blocks.
    pub invalidations: u64,
    /// Messages concerning the region's blocks.
    pub msgs: u64,
    /// Control bytes of those messages (headers included).
    pub ctrl_bytes: u64,
    /// Data payload bytes of those messages.
    pub data_bytes: u64,
}

impl RegionCounters {
    /// Field-wise sum.
    pub fn add(&mut self, o: &RegionCounters) {
        self.read_faults += o.read_faults;
        self.write_faults += o.write_faults;
        self.local_faults += o.local_faults;
        self.invalidations += o.invalidations;
        self.msgs += o.msgs;
        self.ctrl_bytes += o.ctrl_bytes;
        self.data_bytes += o.data_bytes;
    }

    /// Total bytes moved for this region.
    pub fn total_traffic(&self) -> u64 {
        self.ctrl_bytes + self.data_bytes
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Value {
        let mut v = Value::obj();
        v.set("read_faults", self.read_faults);
        v.set("write_faults", self.write_faults);
        v.set("local_faults", self.local_faults);
        v.set("invalidations", self.invalidations);
        v.set("msgs", self.msgs);
        v.set("ctrl_bytes", self.ctrl_bytes);
        v.set("data_bytes", self.data_bytes);
        v
    }

    /// Decode from a JSON object; missing fields default to zero.
    pub fn from_json(v: &Value) -> RegionCounters {
        let f = |name| v.u64_field(name).unwrap_or(0);
        RegionCounters {
            read_faults: f("read_faults"),
            write_faults: f("write_faults"),
            local_faults: f("local_faults"),
            invalidations: f("invalidations"),
            msgs: f("msgs"),
            ctrl_bytes: f("ctrl_bytes"),
            data_bytes: f("data_bytes"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_traffic() {
        let mut a = RegionCounters {
            read_faults: 2,
            ctrl_bytes: 10,
            ..Default::default()
        };
        a.add(&RegionCounters {
            read_faults: 1,
            data_bytes: 5,
            ..Default::default()
        });
        assert_eq!(a.read_faults, 3);
        assert_eq!(a.total_traffic(), 15);
    }

    #[test]
    fn json_roundtrip() {
        let c = RegionCounters {
            read_faults: 1,
            write_faults: 2,
            local_faults: 3,
            invalidations: 4,
            msgs: 5,
            ctrl_bytes: 6,
            data_bytes: 7,
        };
        let back = RegionCounters::from_json(&Value::parse(&c.to_json().to_string()).unwrap());
        assert_eq!(back, c);
    }
}
