//! Minimal fixed-width ASCII table formatting for the benchmark harness.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// ```
/// use dsm_stats::Table;
/// let mut t = Table::new(&["Protocol", "64", "256"]);
/// t.row(&["SC".to_string(), "24654".to_string(), "6297".to_string()]);
/// let s = t.render();
/// assert!(s.contains("SC"));
/// assert!(s.contains("24654"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row. Rows shorter than the header are padded with blanks;
    /// longer rows extend the column count.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Convenience for rows of displayable items.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.rows
            .push(cells.iter().map(|c| c.to_string()).collect());
    }

    /// Render the table with a header underline; first column is
    /// left-aligned, the rest right-aligned (numbers).
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(|r| r.len())
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for (i, w) in widths.iter().enumerate() {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "  {cell:>w$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Format a float speedup/ratio with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a float with 3 decimals (used for HM tables).
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["App", "x"]);
        t.row(&["lu".into(), "1".into()]);
        t.row(&["barnes-original".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all data lines same width
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["x".into()]);
        let s = t.render();
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn float_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(0.125), "0.125");
    }
}
