//! Adaptive lab: run one application three ways — the worst fixed
//! protocol × granularity combination, the best fixed combination, and the
//! adaptive per-region runtime — and show what the policy engine decided
//! and why.
//!
//! ```sh
//! cargo run --release --example adaptive_lab -- fft
//! cargo run --release --example adaptive_lab -- barnes-original
//! ```

use dsm::adapt::{choose_policies, profile_run, ModelParams, CANDIDATE_BLOCKS};
use dsm::{run_experiment, Protocol, RunConfig};
use dsm_apps::registry::{all_app_names, app};
use dsm_stats::Table;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "fft".into());
    if app(&name).is_none() {
        eprintln!("unknown application '{name}'. Available:");
        for n in all_app_names() {
            eprintln!("  {n}");
        }
        std::process::exit(1);
    }

    // Sweep the fixed grid for the baselines.
    println!("sweeping the fixed protocol x granularity grid for {name} ...");
    let mut best = (Protocol::Sc, 0usize, f64::INFINITY);
    let mut worst = (Protocol::Sc, 0usize, 0.0f64);
    let mut seq_ns = 0u64;
    for p in Protocol::ALL {
        for g in CANDIDATE_BLOCKS {
            let r = run_experiment(&RunConfig::new(p, g), app(&name).unwrap());
            assert!(r.check.is_ok(), "{p:?}@{g}: {:?}", r.check);
            let t = r.stats.parallel_time_ns as f64;
            seq_ns = r.stats.sequential_time_ns;
            if t < best.2 {
                best = (p, g, t);
            }
            if t > worst.2 {
                worst = (p, g, t);
            }
        }
    }

    // Profile once at SC @ 64 and let the policy engine decide per region.
    println!("profiling {name} at SC @ 64 and planning per-region policies ...\n");
    let program = app(&name).unwrap();
    let base = RunConfig::new(Protocol::Sc, 64);
    let data = profile_run(&program);
    let plan = choose_policies(&program, &data, &base, &ModelParams::default());

    println!("per-region decisions:");
    let mut t = Table::new(&[
        "Region",
        "bytes",
        "policy",
        "writers",
        "readers",
        "multi-wr units",
        "predicted ms",
    ]);
    for d in &plan.decisions {
        t.row(&[
            d.profile.name.clone(),
            format!("{}", d.profile.len),
            format!("{}@{}", d.protocol.name(), d.block),
            format!("{}", d.profile.writer_nodes),
            format!("{}", d.profile.reader_nodes),
            format!("{}", d.profile.multi_writer_units),
            format!("{:.1}", d.predicted_ns / 1e6),
        ]);
    }
    println!("{}", t.render());
    if plan.mixed {
        println!(
            "plan mixes policies per region (predicted {:.1}ms vs uniform {:.1}ms)",
            plan.per_region_ns / 1e6,
            plan.uniform_ns / 1e6
        );
    } else {
        println!(
            "plan falls back to the uniform winner {}@{} (mixing predicted no clear win)",
            plan.uniform.0.name(),
            plan.uniform.1
        );
    }

    // Run the adaptive configuration.
    let mut cfg = base.clone();
    cfg.protocol = plan.uniform.0;
    cfg.block_size = plan.uniform.1;
    let cfg = cfg.with_region_policies(plan.policies());
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok(), "adaptive: {:?}", r.check);
    let t_adapt = r.stats.parallel_time_ns as f64;

    println!(
        "\n{name} three ways (sequential baseline {:.1}ms):",
        seq_ns as f64 / 1e6
    );
    let mut t = Table::new(&["Configuration", "parallel ms", "speedup", "vs worst"]);
    for (label, p, g, time) in [
        ("worst fixed", Some(worst.0), worst.1, worst.2),
        ("best fixed", Some(best.0), best.1, best.2),
        ("adaptive", None, 0, t_adapt),
    ] {
        let cfg_name = match p {
            Some(p) => format!("{label} ({}@{})", p.name(), g),
            None => {
                if plan.mixed {
                    format!("{label} (per-region)")
                } else {
                    format!("{label} ({}@{})", plan.uniform.0.name(), plan.uniform.1)
                }
            }
        };
        t.row(&[
            cfg_name,
            format!("{:.1}", time / 1e6),
            format!("{:.2}", seq_ns as f64 / time),
            format!("{:.2}x", worst.2 / time),
        ]);
    }
    println!("{}", t.render());
}
