//! False-sharing laboratory: watch write-write false sharing appear as the
//! coherence granularity grows, and how each protocol copes.
//!
//! Sixteen nodes update interleaved array slots between barriers. At 64 B
//! almost every node has private blocks; at 4096 B every block has sixteen
//! writers. SC ping-pongs exclusive ownership, SW-LRC migrates a single
//! writable copy, and HLRC lets all sixteen write concurrently and merges
//! diffs at the home.
//!
//! ```sh
//! cargo run --release --example false_sharing_lab -- 8
//! ```
//! The argument is the stride in words between a node's slots (default 8).

use dsm::{run_experiment, Dsm, DsmProgram, MemImage, Protocol, RunConfig};
use dsm_stats::Table;
use std::sync::Arc;

struct Interleaved {
    words: usize,
    stride: usize,
    rounds: usize,
}

impl DsmProgram for Interleaved {
    fn name(&self) -> String {
        format!("interleaved-stride-{}", self.stride)
    }

    fn shared_bytes(&self) -> usize {
        self.words * 8
    }

    fn init(&self, mem: &mut MemImage) {
        for i in 0..self.words {
            mem.write_u64(i * 8, i as u64);
        }
    }

    fn run(&self, d: &mut dyn Dsm) {
        let (me, p) = (d.node(), d.num_nodes());
        for round in 0..self.rounds {
            // Node j owns word indices where (i / stride) % p == j: stripes
            // of `stride` words, interleaved across nodes.
            let mut i = 0;
            while i < self.words {
                if (i / self.stride) % p == me {
                    for k in 0..self.stride.min(self.words - i) {
                        let a = (i + k) * 8;
                        let v = d.read_u64(a);
                        d.write_u64(a, v.wrapping_mul(31).wrapping_add(round as u64));
                        d.compute(120);
                    }
                    i += self.stride * p;
                } else {
                    i += self.stride;
                }
            }
            d.barrier(0);
        }
    }
}

fn main() {
    let stride: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let mk = move || {
        Arc::new(Interleaved {
            words: 16 * 1024,
            stride,
            rounds: 4,
        })
    };

    println!(
        "interleaved writers, stride {stride} words ({} bytes per stripe):\n",
        stride * 8
    );
    let mut speed = Table::new(&["Protocol", "64 B", "256 B", "1024 B", "4096 B"]);
    let mut faults = Table::new(&["Protocol", "64 B", "256 B", "1024 B", "4096 B"]);
    for p in Protocol::ALL {
        let mut srow = vec![p.name().to_string()];
        let mut frow = vec![p.name().to_string()];
        for g in [64usize, 256, 1024, 4096] {
            let r = run_experiment(&RunConfig::new(p, g), mk());
            assert!(r.check.is_ok());
            let t = r.stats.totals();
            srow.push(format!("{:.2}", r.speedup()));
            frow.push(format!("{}", t.read_faults + t.write_faults));
        }
        speed.row(&srow);
        faults.row(&frow);
    }
    println!("speedups:\n{}", speed.render());
    println!("remote faults:\n{}", faults.render());
    println!("try stride 1 (maximal false sharing) or 512 (page-aligned stripes)");
}
