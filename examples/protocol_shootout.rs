//! Protocol shootout: run one of the paper's applications across the full
//! protocol × granularity grid and print its Figure-1 row.
//!
//! ```sh
//! cargo run --release --example protocol_shootout -- raytrace
//! cargo run --release --example protocol_shootout -- barnes-original
//! ```

use dsm::{run_experiment, Protocol, RunConfig};
use dsm_apps::registry::{all_app_names, app};
use dsm_stats::Table;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "raytrace".into());
    if app(&name).is_none() {
        eprintln!("unknown application '{name}'. Available:");
        for n in all_app_names() {
            eprintln!("  {n}");
        }
        std::process::exit(1);
    }

    println!("speedups for {name} on a simulated 16-node cluster (polling):\n");
    let mut t = Table::new(&["Protocol", "64 B", "256 B", "1024 B", "4096 B"]);
    let mut best = (0.0f64, "", 0usize);
    for p in Protocol::ALL {
        let mut row = vec![p.name().to_string()];
        for g in [64usize, 256, 1024, 4096] {
            let r = run_experiment(&RunConfig::new(p, g), app(&name).unwrap());
            assert!(r.check.is_ok(), "verification failed: {:?}", r.check);
            let s = r.speedup();
            if s > best.0 {
                best = (s, p.name(), g);
            }
            row.push(format!("{s:.2}"));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "best combination: {} @ {} B (speedup {:.2})",
        best.1, best.2, best.0
    );
}
