//! Quickstart: write a shared-memory program against the `Dsm` API, run it
//! under two very different protocol/granularity combinations, and compare.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dsm::{run_experiment, Dsm, DsmProgram, MemImage, Protocol, RunConfig};
use std::sync::Arc;

/// A parallel histogram: every node scans its share of a data array and
/// counts values into a shared, lock-guarded histogram, then node 0 folds
/// the result.
struct Histogram {
    items: usize,
    buckets: usize,
}

impl Histogram {
    // Shared layout: [histogram buckets][data items], all u64.
    fn bucket_addr(&self, b: usize) -> usize {
        b * 8
    }
    fn item_addr(&self, i: usize) -> usize {
        (self.buckets + i) * 8
    }
}

impl DsmProgram for Histogram {
    fn name(&self) -> String {
        "histogram".into()
    }

    fn shared_bytes(&self) -> usize {
        (self.buckets + self.items) * 8
    }

    fn init(&self, mem: &mut MemImage) {
        // Deterministic pseudo-random data.
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..self.items {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            mem.write_u64(self.item_addr(i), x % self.buckets as u64);
        }
    }

    fn run(&self, d: &mut dyn Dsm) {
        let (me, p) = (d.node(), d.num_nodes());
        let per = self.items / p;
        let lo = me * per;
        let hi = if me == p - 1 { self.items } else { lo + per };

        // Count privately first (good parallel manners), then merge under
        // one lock per bucket group.
        let mut local = vec![0u64; self.buckets];
        for i in lo..hi {
            let v = d.read_u64(self.item_addr(i)) as usize;
            local[v] += 1;
            // Pretend each item needs real work (2.5 us): communication
            // only pays off when there is computation to amortize it.
            d.compute(2_500);
        }
        // Merge in four bucket groups, one lock acquisition per group.
        let group = self.buckets / 4;
        for g in 0..4 {
            d.lock(g);
            for (b, &cnt) in local.iter().enumerate().skip(g * group).take(group) {
                if cnt == 0 {
                    continue;
                }
                let cur = d.read_u64(self.bucket_addr(b));
                d.write_u64(self.bucket_addr(b), cur + cnt);
            }
            d.unlock(g);
        }
        d.barrier(0);
    }

    fn check(&self, seq: &MemImage, par: &MemImage) -> Result<(), String> {
        for b in 0..self.buckets {
            let (s, p) = (seq.read_u64(b * 8), par.read_u64(b * 8));
            if s != p {
                return Err(format!("bucket {b}: sequential {s} != parallel {p}"));
            }
        }
        Ok(())
    }
}

fn main() {
    let app = Arc::new(Histogram {
        items: 64 * 1024,
        buckets: 64,
    });

    println!("running the same program under two configurations:\n");
    for cfg in [
        RunConfig::new(Protocol::Sc, 64),
        RunConfig::new(Protocol::Hlrc, 4096),
    ] {
        let r = run_experiment(&cfg, app.clone());
        let t = r.stats.totals();
        println!(
            "{:>6} @ {:>4} B | speedup {:>5.2} | read faults {:>6} | write faults {:>5} | \
             traffic {:>6} KB | verified: {}",
            cfg.protocol.name(),
            cfg.block_size,
            r.speedup(),
            t.read_faults,
            t.write_faults,
            t.total_traffic() / 1024,
            r.check.is_ok(),
        );
    }
    println!("\nBoth runs produce exactly the sequential result — the protocols");
    println!("differ only in how much communication it takes to get there.");
}
