#![warn(missing_docs)]

//! # dsm — relaxed consistency and coherence granularity in DSM systems
//!
//! A reproduction of Zhou, Iftode, Singh, Li, Toonen, Schoinas, Hill and
//! Wood, *"Relaxed Consistency and Coherence Granularity in DSM Systems: A
//! Performance Evaluation"* (PPoPP 1997), as a Rust workspace.
//!
//! This umbrella crate re-exports the public API of the member crates:
//!
//! * [`sim`] — deterministic discrete-event cluster engine;
//! * [`net`] — Myrinet-calibrated latency model and platform costs;
//! * [`mem`] — shared address space, access control, first-touch homes;
//! * [`proto`] — the SC, SW-LRC and HLRC coherence protocols;
//! * [`core`] — the run harness and the [`Dsm`] programming interface;
//! * [`apps`] — the twelve SPLASH-2-derived applications;
//! * [`stats`] — counters and the paper's aggregate statistics;
//! * [`obs`] — structured event recording, execution-time breakdowns and
//!   the Perfetto/JSONL exporters;
//! * [`adapt`] — sharing profiler, cost model, and the per-region adaptive
//!   protocol × granularity policy engine;
//! * [`mc`] — exhaustive schedule-space model checker (sleep-set DPOR)
//!   for bounded configurations of all four protocols;
//! * [`json`] — the minimal JSON value model the workspace uses offline.
//!
//! ## Quick start
//!
//! ```
//! use dsm::{run_experiment, Protocol, RunConfig};
//!
//! let app = dsm::apps::registry::app_sized("lu", dsm::apps::registry::AppSize::Small).unwrap();
//! let result = run_experiment(&RunConfig::new(Protocol::Hlrc, 4096), app);
//! assert!(result.check.is_ok());
//! println!("speedup: {:.2}", result.speedup());
//! ```

pub use dsm_adapt as adapt;
pub use dsm_apps as apps;
pub use dsm_core as core;
pub use dsm_fabric as fabric;
pub use dsm_json as json;
pub use dsm_mc as mc;
pub use dsm_mem as mem;
pub use dsm_net as net;
pub use dsm_obs as obs;
pub use dsm_proto as proto;
pub use dsm_sim as sim;
pub use dsm_stats as stats;

pub use dsm_core::{
    run_checked, run_experiment, run_parallel, run_parallel_mc, run_sequential, touch_region, Dsm,
    DsmProgram, ExperimentResult, FabricConfig, MemImage, Notify, Program, Protocol, RegionHint,
    RegionPolicy, RegionReport, RunConfig,
};
