//! Invariant tests for causal span tracing, critical-path extraction and
//! windowed time-series collection.
//!
//! The load-bearing guarantees:
//!
//! * the per-category attribution sums to `parallel_time_ns` **exactly**
//!   (the path tiles the measured interval by construction) on every
//!   application under every protocol;
//! * span tracing never perturbs the simulation: a spans-on run is
//!   bit-identical to a spans-off run;
//! * the Perfetto export renders cross-node flow arrows for fetch and
//!   lock-transfer spans;
//! * series buckets reconcile with the protocol counters.

use dsm::{run_experiment, Protocol, RunConfig};
use dsm_apps::registry::{all_app_names, app_sized, AppSize};
use dsm_json::Value;
use dsm_obs::{chrome_trace, critical_path, series_jsonl, CritPath};

/// Run one (app, protocol) cell with spans on and check every critical-path
/// invariant: exact attribution, contiguous chronological tiling of the
/// measured interval, and a sane speedup bound.
fn check_critpath(app: &str, p: Protocol, block: usize) -> CritPath {
    let program = app_sized(app, AppSize::Small).unwrap();
    let cfg = RunConfig::new(p, block).with_spans();
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok(), "{app} {p:?}@{block}: {:?}", r.check);
    let spans = r.obs.spans.as_ref().expect("spans enabled");
    assert!(!spans.is_empty(), "{app} {p:?}@{block}: no span events");
    let cp = critical_path(&r.obs, r.stats.parallel_time_ns)
        .unwrap_or_else(|| panic!("{app} {p:?}@{block}: no critical path"));
    assert!(
        cp.is_exact(),
        "{app} {p:?}@{block}: attributed {} != parallel {}",
        cp.attributed_ns(),
        cp.parallel_time_ns
    );
    assert!(!cp.truncated, "{app} {p:?}@{block}: walk truncated");
    assert!(cp.span_events > 0);
    // The segments tile [measure_start, measure_start + parallel_time]
    // contiguously in chronological order — that is *why* the sum is exact.
    let mut t = cp.measure_start_ns;
    for seg in &cp.segments {
        assert_eq!(
            seg.start, t,
            "{app} {p:?}@{block}: gap or overlap at {t} ({seg:?})"
        );
        assert!(seg.end > seg.start);
        t = seg.end;
    }
    assert_eq!(t, cp.measure_start_ns + cp.parallel_time_ns);
    // Category totals are just the segments re-binned.
    let seg_sum: u64 = cp.segments.iter().map(|s| s.dur()).sum();
    assert_eq!(seg_sum, cp.by_category.iter().sum::<u64>());
    cp
}

#[test]
fn critpath_exact_all_apps_sc() {
    for app in all_app_names() {
        check_critpath(app, Protocol::Sc, 4096);
    }
}

#[test]
fn critpath_exact_all_apps_swlrc() {
    for app in all_app_names() {
        check_critpath(app, Protocol::SwLrc, 4096);
    }
}

#[test]
fn critpath_exact_all_apps_hlrc() {
    for app in all_app_names() {
        check_critpath(app, Protocol::Hlrc, 4096);
    }
}

#[test]
fn critpath_exact_all_apps_tardis() {
    for app in all_app_names() {
        check_critpath(app, Protocol::Tardis, 4096);
    }
}

/// Span tracing is observation only: enabling it changes neither the
/// modeled times nor the event count nor any per-node counter.
#[test]
fn spans_off_runs_are_bit_identical() {
    for app in ["lu", "water-nsquared"] {
        let p = Protocol::Hlrc;
        let off = run_experiment(
            &RunConfig::new(p, 1024),
            app_sized(app, AppSize::Small).unwrap(),
        );
        let on = run_experiment(
            &RunConfig::new(p, 1024).with_spans(),
            app_sized(app, AppSize::Small).unwrap(),
        );
        assert!(off.obs.spans.is_none());
        assert!(on.obs.spans.is_some());
        assert_eq!(off.stats.parallel_time_ns, on.stats.parallel_time_ns);
        assert_eq!(off.stats.sim_events, on.stats.sim_events);
        assert_eq!(
            off.stats.totals().to_json().to_string(),
            on.stats.totals().to_json().to_string(),
            "{app}: spans-on run diverged from spans-off"
        );
    }
}

/// The Perfetto export carries cross-node flow arrows ("s"/"f" pairs in the
/// `span` category) for at least the fetch and lock-transfer span classes,
/// and stays valid JSON.
#[test]
fn chrome_trace_renders_fetch_and_lock_flow_arrows() {
    let program = app_sized("water-nsquared", AppSize::Small).unwrap();
    let cfg = RunConfig::new(Protocol::SwLrc, 1024)
        .with_recording()
        .with_spans();
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok());
    let trace = chrome_trace(&r.obs);
    let v = Value::parse(&trace).expect("trace must be valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let mut fetch = (0u32, 0u32); // (starts, finishes)
    let mut lock = (0u32, 0u32);
    for ev in events {
        if ev.get("cat").and_then(Value::as_str) != Some("span") {
            continue;
        }
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        let name = ev.get("name").unwrap().as_str().unwrap();
        assert!(ev.u64_field("id").is_some(), "flow events need an id");
        match (name, ph) {
            ("fetch", "s") => fetch.0 += 1,
            ("fetch", "f") => fetch.1 += 1,
            ("lock", "s") => lock.0 += 1,
            ("lock", "f") => lock.1 += 1,
            _ => {}
        }
    }
    assert!(fetch.0 > 0, "no fetch flow arrows");
    assert!(lock.0 > 0, "no lock flow arrows");
    assert_eq!(fetch.0, fetch.1, "unpaired fetch flows");
    assert_eq!(lock.0, lock.1, "unpaired lock flows");
}

/// Series buckets reconcile with the counters: the summed per-node message
/// counts equal `msgs_sent`, and every JSONL record is schema-versioned and
/// parseable.
#[test]
fn series_buckets_reconcile_with_counters() {
    let program = app_sized("fft", AppSize::Small).unwrap();
    let cfg = RunConfig::new(Protocol::Sc, 4096).with_series(100_000);
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok());
    let sr = r.obs.series.as_ref().expect("series enabled");
    assert_eq!(sr.window_ns, 100_000);
    assert_eq!(sr.nodes.len(), cfg.nodes);
    for (i, (n, c)) in sr.nodes.iter().zip(&r.stats.per_node).enumerate() {
        let msgs: u64 = n.buckets.iter().map(|b| b.msgs).sum();
        assert_eq!(msgs, c.msgs_sent, "node {i}: series msgs != msgs_sent");
    }
    let jsonl = series_jsonl(&r.obs);
    let mut records = 0;
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("series line must parse");
        assert_eq!(v.get("type").unwrap().as_str(), Some("series"));
        assert_eq!(v.u64_field("schema"), Some(1));
        assert!(v.u64_field("window_ns").is_some());
        assert!(v.u64_field("start_ns").is_some());
        records += 1;
    }
    assert!(records > 0, "no series records emitted");
}
