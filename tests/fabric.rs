//! Integration tests for the simulated network fabric: the ideal default
//! is bit-for-bit the analytic model, contention only slows runs down, and
//! fault schedules with a sufficient retry budget never corrupt results.

use std::sync::Arc;

use dsm::apps::registry::app;
use dsm::{run_parallel, FabricConfig, Protocol, RunConfig};

/// Small-but-real app set covering all three sharing styles: regular
/// blocked (lu), lock-heavy irregular (barnes-spatial), scatter-gather
/// (fft).
const SMOKE_APPS: [&str; 3] = ["lu", "fft", "barnes-spatial"];

#[test]
fn ideal_fabric_is_bit_identical_to_default() {
    // `FabricConfig::ideal()` must not merely be close — the packet-layer
    // plumbing has a dedicated fast path that posts the exact same events
    // at the exact same times as the pre-fabric code, so timings and
    // counters are equal, not approximately equal.
    let program = app("lu").unwrap();
    let base = run_parallel(&RunConfig::new(Protocol::Hlrc, 1024), Arc::clone(&program));
    let ideal = run_parallel(
        &RunConfig::new(Protocol::Hlrc, 1024).with_fabric(FabricConfig::ideal()),
        program,
    );
    assert_eq!(base.stats.parallel_time_ns, ideal.stats.parallel_time_ns);
    assert_eq!(base.image.bytes(), ideal.image.bytes());
    assert_eq!(
        base.stats.totals().to_json().to_string(),
        ideal.stats.totals().to_json().to_string()
    );
}

#[test]
fn contended_fabric_charges_queueing_but_stays_correct() {
    let program = app("lu").unwrap();
    let ideal = run_parallel(&RunConfig::new(Protocol::Sc, 1024), Arc::clone(&program));
    let contended = run_parallel(
        &RunConfig::new(Protocol::Sc, 1024).with_fabric(FabricConfig::contended()),
        program,
    );
    // Same result, strictly more time: every frame pays NI occupancy.
    assert_eq!(ideal.image.bytes(), contended.image.bytes());
    assert!(contended.stats.parallel_time_ns > ideal.stats.parallel_time_ns);
    let t = contended.stats.totals();
    assert!(t.fabric_frames > 0);
    assert!(t.fabric_queue_ns > 0, "bursts must queue behind the NI");
    // Lossless: no reliability machinery engaged.
    assert_eq!(t.fabric_retries, 0);
    assert_eq!(t.fabric_drops, 0);
    assert_eq!(t.fabric_acks, 0);
}

#[test]
fn faulty_fabric_recovers_on_every_protocol() {
    for name in SMOKE_APPS {
        for protocol in Protocol::ALL {
            let program = app(name).unwrap();
            let clean = run_parallel(&RunConfig::new(protocol, 4096), Arc::clone(&program));
            let faulty = run_parallel(
                &RunConfig::new(protocol, 4096).with_fabric(FabricConfig::faulty(42)),
                program,
            );
            assert_eq!(
                clean.image.bytes(),
                faulty.image.bytes(),
                "{name} {protocol:?}: fault schedule corrupted the final image"
            );
            let t = faulty.stats.totals();
            assert!(t.fabric_frames > 0, "{name} {protocol:?}: no frames");
            assert!(
                t.fabric_drops > 0 && t.fabric_retries > 0,
                "{name} {protocol:?}: 1% drop plan should force retransmissions \
                 (drops={} retries={})",
                t.fabric_drops,
                t.fabric_retries
            );
            // Every lost frame times out into a retransmission; delay
            // spikes that outlast a timeout add spurious (harmless) ones.
            assert!(
                t.fabric_retries >= t.fabric_drops,
                "{name} {protocol:?}: drops={} > retries={}",
                t.fabric_drops,
                t.fabric_retries
            );
            assert!(t.fabric_acks > 0);
            // Redundant copies (injector duplicates, and late originals of
            // frames that were already retransmitted) must be absorbed by
            // the receive-side dedup, never double-dispatched — the image
            // equality above is the real check; the counter shows the
            // dedup path actually ran.
            assert!(t.fabric_dup_drops > 0, "{name} {protocol:?}: dedup idle");
        }
    }
}

#[test]
fn heavy_loss_exhausts_budget_but_still_delivers() {
    // 30% drop rate with a tiny retry budget: the forced final attempt
    // (which bypasses the injector) guarantees delivery, so the run is
    // still correct and the exhausted counter shows the budget ran out.
    let program = app("lu").unwrap();
    let clean = run_parallel(&RunConfig::new(Protocol::Sc, 4096), Arc::clone(&program));
    let cfg = FabricConfig::parse("faulty,seed=7,drop=300000,retries=1").unwrap();
    let faulty = run_parallel(
        &RunConfig::new(Protocol::Sc, 4096).with_fabric(cfg),
        program,
    );
    assert_eq!(clean.image.bytes(), faulty.image.bytes());
    let t = faulty.stats.totals();
    assert!(
        t.fabric_exhausted > 0,
        "30% loss with 1 retry must exhaust some budgets"
    );
}

#[test]
fn fault_schedules_are_deterministic() {
    let cfg = || RunConfig::new(Protocol::SwLrc, 1024).with_fabric(FabricConfig::faulty(99));
    let a = run_parallel(&cfg(), app("fft").unwrap());
    let b = run_parallel(&cfg(), app("fft").unwrap());
    assert_eq!(a.stats.parallel_time_ns, b.stats.parallel_time_ns);
    assert_eq!(
        a.stats.totals().to_json().to_string(),
        b.stats.totals().to_json().to_string()
    );
    // A different seed draws a different schedule.
    let c = run_parallel(
        &RunConfig::new(Protocol::SwLrc, 1024).with_fabric(FabricConfig::faulty(100)),
        app("fft").unwrap(),
    );
    assert_ne!(
        a.stats.totals().fabric_drops + a.stats.totals().fabric_dups,
        c.stats.totals().fabric_drops + c.stats.totals().fabric_dups,
        "seeds 99 and 100 drew identical fault schedules (vanishingly unlikely)"
    );
}
