//! Cross-crate integration tests through the `dsm` facade: statistics
//! invariants, determinism, and protocol-relationship properties on the
//! real applications.

use dsm::{run_experiment, Notify, Protocol, RegionPolicy, RunConfig};
use dsm_apps::registry::{app_sized, AppSize};

fn small(name: &str) -> dsm::Program {
    app_sized(name, AppSize::Small).expect("app")
}

#[test]
fn stats_invariants_hold_across_protocols() {
    for p in Protocol::ALL {
        let cfg = RunConfig::new(p, 1024);
        let r = run_experiment(&cfg, small("water-spatial"));
        assert!(r.check.is_ok(), "{p:?}: {:?}", r.check);
        let t = r.stats.totals();
        // A 16-node run communicates.
        assert!(t.msgs_sent > 0, "{p:?}: no messages");
        assert!(t.read_faults > 0, "{p:?}: no read faults");
        // Traffic includes at least one header per message.
        assert!(t.ctrl_bytes >= 16 * t.msgs_sent || t.data_bytes > 0);
        // Everyone participates in every barrier episode.
        let b0 = r.stats.per_node[0].barriers;
        assert!(b0 > 0);
        for (i, node) in r.stats.per_node.iter().enumerate() {
            assert_eq!(node.barriers, b0, "node {i} barrier count differs");
        }
        // Speedup is positive and bounded by the node count with slack for
        // model effects.
        assert!(r.speedup() > 0.0 && r.speedup() < 17.0);
    }
}

#[test]
fn lrc_machinery_only_engages_for_lrc_protocols() {
    let sc = run_experiment(
        &RunConfig::new(Protocol::Sc, 1024),
        small("volrend-rowwise"),
    );
    let hl = run_experiment(
        &RunConfig::new(Protocol::Hlrc, 1024),
        small("volrend-rowwise"),
    );
    let sw = run_experiment(
        &RunConfig::new(Protocol::SwLrc, 1024),
        small("volrend-rowwise"),
    );
    let (sct, hlt, swt) = (sc.stats.totals(), hl.stats.totals(), sw.stats.totals());
    assert_eq!(sct.write_notices_sent, 0, "SC must not send write notices");
    assert_eq!(sct.diffs_created, 0);
    assert_eq!(sct.twins_created, 0);
    assert!(hlt.write_notices_sent > 0, "HLRC must send write notices");
    assert!(hlt.twins_created > 0, "HLRC must twin dirty remote blocks");
    assert!(swt.write_notices_sent > 0, "SW-LRC must send write notices");
    assert_eq!(swt.twins_created, 0, "SW-LRC never twins");
    assert_eq!(swt.diffs_created, 0, "SW-LRC never diffs");
}

#[test]
fn tardis_leases_expire_across_barrier_episodes() {
    // Barrier-only app with heavy read sharing: every barrier merges the
    // writers' program timestamps into every reader, so leases taken in
    // one episode are dead by the next and each episode's reads must
    // re-lease. The run must stay checker-clean while doing so, and the
    // lease machinery must be visibly engaged: expiries from crossing the
    // barrier, and write grants that had to clear outstanding leases.
    let td = run_experiment(
        &RunConfig::new(Protocol::Tardis, 1024).with_check(),
        small("ocean-rowwise"),
    );
    assert!(td.check.is_ok());
    assert!(td.violations.is_empty(), "{:?}", td.violations);
    let t = td.stats.totals();
    assert!(t.lease_expiries > 0, "barriers must expire leases");
    assert!(t.wts_bumps > 0, "writes must clear outstanding leases");
    assert_eq!(t.write_notices_sent, 0, "Tardis never sends write notices");
    assert_eq!(t.twins_created, 0, "Tardis never twins");
    assert_eq!(t.diffs_created, 0, "Tardis never diffs");
    // The lease counters are Tardis-only: zero under the other protocols.
    for p in [Protocol::Sc, Protocol::SwLrc, Protocol::Hlrc] {
        let r = run_experiment(&RunConfig::new(p, 1024), small("ocean-rowwise"));
        let t = r.stats.totals();
        assert_eq!(
            (t.lease_renewals, t.lease_expiries, t.wts_bumps),
            (0, 0, 0),
            "{p:?} must not touch the lease counters"
        );
    }
}

#[test]
fn tardis_verifies_under_interrupt_notification() {
    // The interrupt notification model (70 µs async cost, deferred
    // invalidation grace window) rides the same machinery for every
    // protocol; Tardis recalls and lease grants must stay correct and
    // checker-clean under it, not just under polling.
    let r = run_experiment(
        &RunConfig::new(Protocol::Tardis, 1024)
            .with_notify(Notify::Interrupt)
            .with_check(),
        small("water-nsquared"),
    );
    assert!(r.check.is_ok());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.stats.totals().interrupts_taken > 0);
}

#[test]
fn invalidations_are_eager_under_sc_and_lazy_under_lrc() {
    // Under SC, every write miss on a shared block invalidates eagerly;
    // under the LRC protocols invalidations only happen at acquires, so
    // for a barrier-only app with heavy read sharing, SC must invalidate
    // at least as often.
    let sc = run_experiment(&RunConfig::new(Protocol::Sc, 4096), small("ocean-rowwise"));
    let hl = run_experiment(
        &RunConfig::new(Protocol::Hlrc, 4096),
        small("ocean-rowwise"),
    );
    assert!(sc.check.is_ok() && hl.check.is_ok());
    let scf = sc.stats.totals().write_faults + sc.stats.totals().read_faults;
    let hlf = hl.stats.totals().write_faults + hl.stats.totals().read_faults;
    assert!(
        hlf <= scf,
        "HLRC remote faults ({hlf}) must not exceed SC's ({scf}) at page granularity"
    );
}

#[test]
fn interrupt_runs_count_interrupts_and_polling_runs_do_not() {
    let poll = run_experiment(&RunConfig::new(Protocol::Sc, 1024), small("water-nsquared"));
    let intr = run_experiment(
        &RunConfig::new(Protocol::Sc, 1024).with_notify(Notify::Interrupt),
        small("water-nsquared"),
    );
    assert_eq!(poll.stats.totals().interrupts_taken, 0);
    assert!(intr.stats.totals().interrupts_taken > 0);
    // Polling inflates compute; interrupts do not.
    assert!(poll.stats.totals().poll_overhead_ns > 0);
    assert_eq!(intr.stats.totals().poll_overhead_ns, 0);
}

#[test]
fn every_app_is_deterministic_across_repeat_runs() {
    for name in ["lu", "barnes-partree", "raytrace"] {
        let cfg = RunConfig::new(Protocol::Hlrc, 256);
        let a = run_experiment(&cfg, small(name));
        let b = run_experiment(&cfg, small(name));
        assert_eq!(
            a.stats.parallel_time_ns, b.stats.parallel_time_ns,
            "{name}: run times differ"
        );
        assert_eq!(
            a.stats.totals(),
            b.stats.totals(),
            "{name}: counters differ"
        );
    }
}

#[test]
fn cluster_size_sweep_works_for_size_generic_apps() {
    // The engine and protocols are node-count generic; check correctness
    // across cluster sizes (the test-size problem is too small to expect
    // monotone scaling).
    for nodes in [4usize, 8, 16] {
        let cfg = RunConfig::new(Protocol::Hlrc, 4096).with_nodes(nodes);
        let r = run_experiment(&cfg, small("water-nsquared"));
        assert!(r.check.is_ok(), "{nodes} nodes: {:?}", r.check);
        assert!(r.speedup() > 0.0);
        assert_eq!(r.stats.per_node.len(), nodes);
    }
}

#[test]
fn degenerate_granularity_whole_space_in_blocks() {
    // Block size bigger than some app regions: one block holds everything
    // that false-shares. Must still verify under every protocol.
    for p in Protocol::ALL {
        let cfg = RunConfig::new(p, 8192);
        let r = run_experiment(&cfg, small("volrend-original"));
        assert!(r.check.is_ok(), "{p:?}@8192: {:?}", r.check);
    }
}

#[test]
fn mixed_mode_regions_verify_and_are_deterministic() {
    // Heterogeneous per-region policies in a single run: different
    // protocols at different granularities must coexist without breaking
    // the memory model (parallel result equals the sequential baseline)
    // and without perturbing determinism across repetitions.
    let cases: Vec<(&str, Protocol, usize, Vec<RegionPolicy>)> = vec![
        (
            "fft",
            Protocol::SwLrc,
            1024,
            vec![
                RegionPolicy::new("matrix0", Protocol::Sc, 256),
                RegionPolicy::new("matrix1", Protocol::Hlrc, 4096),
            ],
        ),
        (
            "ocean-original",
            Protocol::Sc,
            256,
            vec![
                RegionPolicy::new("interior", Protocol::Hlrc, 4096),
                RegionPolicy::new("boundary", Protocol::Sc, 256),
            ],
        ),
        (
            "volrend-rowwise",
            Protocol::Sc,
            64,
            vec![
                RegionPolicy::new("volume", Protocol::Sc, 1024),
                RegionPolicy::new("image", Protocol::Hlrc, 4096),
                RegionPolicy::new("queues", Protocol::SwLrc, 256),
            ],
        ),
        (
            "raytrace",
            Protocol::Hlrc,
            1024,
            vec![
                RegionPolicy::new("image", Protocol::SwLrc, 256),
                RegionPolicy::new("queues", Protocol::Sc, 64),
            ],
        ),
    ];
    for (name, proto, block, policies) in cases {
        let cfg = RunConfig::new(proto, block).with_region_policies(policies);
        let a = run_experiment(&cfg, small(name));
        assert!(a.check.is_ok(), "{name} mixed-mode: {:?}", a.check);
        // The run really is heterogeneous: at least two distinct
        // (protocol, granularity) combinations were active.
        let combos: std::collections::HashSet<(&str, usize)> = a
            .regions
            .iter()
            .map(|r| (r.protocol.name(), r.block))
            .collect();
        assert!(
            combos.len() >= 2,
            "{name}: expected heterogeneous regions, got {combos:?}"
        );
        // Bit-for-bit repeatable.
        let b = run_experiment(&cfg, small(name));
        assert_eq!(
            a.stats.parallel_time_ns, b.stats.parallel_time_ns,
            "{name}: mixed-mode run times differ across repetitions"
        );
        assert_eq!(
            a.stats.totals(),
            b.stats.totals(),
            "{name}: mixed-mode counters differ across repetitions"
        );
    }
}

#[test]
fn adaptive_runtime_verifies_on_small_apps() {
    // The full profile -> plan -> mixed-mode pipeline through the facade.
    for name in ["fft", "water-spatial", "barnes-original"] {
        let (plan, r) = dsm::adapt::run_adaptive(&RunConfig::new(Protocol::Sc, 64), small(name));
        assert!(r.check.is_ok(), "{name} adaptive: {:?}", r.check);
        assert!(!plan.decisions.is_empty(), "{name}: no region decisions");
        assert!(plan.uniform_ns.is_finite() && plan.uniform_ns > 0.0);
        // barnes-original declares extra LRC synchronization; the engine
        // must respect it and stay with SC.
        if name == "barnes-original" {
            for d in &plan.decisions {
                assert_eq!(d.protocol, Protocol::Sc, "{name}: LRC chosen for {d:?}");
            }
        }
    }
}

#[test]
fn two_node_cluster_is_a_valid_degenerate_case() {
    for p in Protocol::ALL {
        let cfg = RunConfig::new(p, 256).with_nodes(2);
        let r = run_experiment(&cfg, small("water-nsquared"));
        assert!(r.check.is_ok(), "{p:?} on 2 nodes: {:?}", r.check);
    }
}

#[test]
fn parallel_sweep_matches_serial() {
    // The sweep executor fans independent deterministic simulations across
    // worker threads; the results must be bit-identical to a serial sweep,
    // in the same order. 2 apps x 2 protocols, cache bypassed.
    use dsm_bench::sweep::{run_cells_fresh, CellSpec};
    let mut specs = Vec::new();
    for app in ["lu", "water-nsquared"] {
        for p in [Protocol::SwLrc, Protocol::Hlrc] {
            specs.push(CellSpec::new(app, p, 1024));
        }
    }
    let serial = run_cells_fresh(&specs, 1, AppSize::Small);
    let parallel = run_cells_fresh(&specs, 4, AppSize::Small);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            (a.app.as_str(), a.protocol.as_str(), a.block),
            (b.app.as_str(), b.protocol.as_str(), b.block)
        );
        assert!(
            a.check_err.is_none(),
            "{} {}@{}: {:?}",
            a.app,
            a.protocol,
            a.block,
            a.check_err
        );
        assert!(a.stats.sim_events > 0, "events metric must be populated");
        assert_eq!(
            a.stats.to_json().to_string(),
            b.stats.to_json().to_string(),
            "parallel cell {} {}@{} diverged from serial",
            a.app,
            a.protocol,
            a.block
        );
    }
}

#[test]
fn windowed_engine_matches_serial_across_the_figure1_grid() {
    // The centerpiece of the conservative-PDES engine: every cell of the
    // Figure 1 grid (12 apps x 4 protocols x 4 granularities) must produce
    // bit-identical statistics under DSM_SIM_PAR=4 windowed execution and
    // under the classic serial engine. The windowed committer executes all
    // world phases in exact global (time, seq) order, so any divergence at
    // all is an engine bug, not noise.
    use dsm_bench::sweep::{run_cells_fresh_sim, CellSpec, GRANULARITIES};
    let specs: Vec<CellSpec> = dsm_apps::all_app_names()
        .iter()
        .flat_map(|&app| {
            Protocol::ALL
                .iter()
                .flat_map(move |&p| GRANULARITIES.iter().map(move |&g| CellSpec::new(app, p, g)))
        })
        .collect();
    assert_eq!(specs.len(), 192);
    let serial = run_cells_fresh_sim(&specs, 4, AppSize::Small, 1);
    let windowed = run_cells_fresh_sim(&specs, 4, AppSize::Small, 4);
    assert_eq!(serial.len(), windowed.len());
    for (a, b) in serial.iter().zip(&windowed) {
        assert_eq!(
            (a.app.as_str(), a.protocol.as_str(), a.block),
            (b.app.as_str(), b.protocol.as_str(), b.block)
        );
        assert!(
            b.check_err.is_none(),
            "{} {}@{} windowed: {:?}",
            b.app,
            b.protocol,
            b.block,
            b.check_err
        );
        assert!(a.stats.sim_events > 0, "events metric must be populated");
        assert_eq!(
            a.stats.to_json().to_string(),
            b.stats.to_json().to_string(),
            "windowed cell {} {}@{} diverged from serial",
            a.app,
            a.protocol,
            a.block
        );
    }
}

#[test]
fn windowed_engine_with_checker_and_spans_matches_serial() {
    // The race detector and causal span tracing both observe every event;
    // under windowed execution they must see the exact same history. Runs
    // must stay clean (no violations) and bit-identical to serial with both
    // instruments on.
    for app in ["fft", "water-spatial"] {
        for p in Protocol::ALL {
            let cfg = RunConfig::new(p, 256).with_check().with_spans();
            let s = run_experiment(&cfg.clone().with_sim_threads(1), small(app));
            let w = run_experiment(&cfg.clone().with_sim_threads(4), small(app));
            assert!(s.check.is_ok(), "{app} {p:?} serial: {:?}", s.check);
            assert!(w.check.is_ok(), "{app} {p:?} windowed: {:?}", w.check);
            assert!(
                s.violations.is_empty() && w.violations.is_empty(),
                "{app} {p:?}: violations serial={} windowed={}",
                s.violations.len(),
                w.violations.len()
            );
            assert_eq!(
                s.stats.to_json().to_string(),
                w.stats.to_json().to_string(),
                "{app} {p:?}: checker+spans run diverged under windowed execution"
            );
        }
    }
}

#[test]
fn windowed_engine_matches_serial_under_a_faulty_fabric() {
    // The reliability machinery (acks, retransmission timers, dup/reorder
    // fault injection) posts the densest cross-node event patterns; the
    // lookahead bound must hold there too. Same seed, same faults, same
    // bits.
    use dsm::FabricConfig;
    for p in [Protocol::Hlrc, Protocol::SwLrc] {
        let cfg = RunConfig::new(p, 1024)
            .with_fabric(FabricConfig::faulty(7))
            .with_check();
        let s = run_experiment(&cfg.clone().with_sim_threads(1), small("lu"));
        let w = run_experiment(&cfg.clone().with_sim_threads(4), small("lu"));
        assert!(s.check.is_ok() && w.check.is_ok());
        assert!(s.violations.is_empty() && w.violations.is_empty());
        assert_eq!(
            s.stats.to_json().to_string(),
            w.stats.to_json().to_string(),
            "{p:?}: faulty-fabric run diverged under windowed execution"
        );
    }
}
