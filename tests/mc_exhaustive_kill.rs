//! Exhaustive mutation kill matrix under the model checker.
//!
//! The seeded kill matrix (`tests/mutation_kill.rs`) finds each planted
//! protocol bug on one stochastic run with a hand-picked seed. This matrix
//! is stronger: the model checker explores the schedule space of a
//! miniaturized 2-node program with the mutation armed at its *first
//! eligible occurrence on every schedule* ([`Mutation::first_occurrence_seed`])
//! and must find the planted bug on some explored schedule — no seed
//! search, no stochastic fault rates. Fabric mutations get their faults
//! from the exploration's own drop/duplicate/reorder branch points.

#![cfg(feature = "mutate")]

use dsm::mc::{explore, program, McConfig};
use dsm::proto::{MutFabric, MUTATIONS};

#[test]
fn every_mutation_dies_on_some_explored_schedule() {
    let mut failed = Vec::new();
    for spec in MUTATIONS.iter() {
        let (prog, budget) = match spec.fabric {
            MutFabric::Ideal => (program::kill_program(6, 2), 0),
            MutFabric::Dup | MutFabric::Reorder => (program::lock_pingpong(2), 1),
        };
        let cfg = McConfig::new(spec.protocol)
            .with_faults(budget)
            .with_mutation(spec.mutation);
        let report = explore(&cfg, &prog);
        let killed = report.violation_counts.contains_key(spec.rule);
        println!(
            "{:?} ({}): schedules={} executions={} killed={} counts={:?}",
            spec.mutation,
            spec.rule,
            report.schedules,
            report.executions(),
            killed,
            report.violation_counts
        );
        if !killed {
            failed.push(spec);
        }
    }
    assert!(
        failed.is_empty(),
        "mutations not killed by exhaustive exploration: {:?}",
        failed
            .iter()
            .map(|s| (s.mutation, s.rule))
            .collect::<Vec<_>>()
    );
}
