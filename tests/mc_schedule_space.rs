//! Schedule-space exploration: golden counts and clean sweeps.
//!
//! The engine is deterministic, so exploration statistics are exact golden
//! values, not flaky observations: a change here means the schedule space
//! itself changed (new commit points, different tie sets) and must be
//! understood, not papered over.

use dsm::mc::{explore, program, McConfig};
use dsm::Protocol;

/// Satellite: canonical 2-node, 2-op message-passing program. One genuine
/// commit-point tie exists (node 1's barrier-release delivery vs node 0's
/// resume), giving exactly 2 unreduced schedules; sleep-set DPOR proves
/// the two orders equivalent and explores exactly 1.
#[test]
fn msg_pass_golden_schedule_counts() {
    let prog = program::msg_pass();

    let mut raw = McConfig::new(Protocol::Sc);
    raw.reduce = false;
    raw.dedup = false;
    let unreduced = explore(&raw, &prog);
    assert!(unreduced.complete && unreduced.clean(), "{unreduced:?}");
    assert_eq!(unreduced.schedules, 2, "unreduced schedule count changed");

    let reduced = explore(&McConfig::new(Protocol::Sc), &prog);
    assert!(reduced.complete && reduced.clean(), "{reduced:?}");
    assert_eq!(reduced.schedules, 1, "DPOR schedule count changed");
    assert!(
        reduced.schedules < unreduced.schedules,
        "reduction must be strict"
    );
    assert!(reduced.reduction_ratio() > 1.0);
}

/// The contended lock-counter program has 8 unreduced schedules (three
/// binary ties: lock grant order, then per-round notice/resume orders);
/// DPOR + state dedup collapse them to a single representative.
#[test]
fn lock_counter_golden_schedule_counts() {
    let prog = program::lock_counter(2, 1);

    let mut raw = McConfig::new(Protocol::Sc);
    raw.reduce = false;
    raw.dedup = false;
    let unreduced = explore(&raw, &prog);
    assert!(unreduced.complete && unreduced.clean(), "{unreduced:?}");
    assert_eq!(unreduced.schedules, 8, "unreduced schedule count changed");

    let reduced = explore(&McConfig::new(Protocol::Sc), &prog);
    assert!(reduced.complete && reduced.clean(), "{reduced:?}");
    assert_eq!(reduced.schedules, 1, "DPOR schedule count changed");
}

/// Tentpole acceptance: every protocol explores a bounded configuration
/// with a nonzero fault budget to completion, with zero violations from
/// the mirrors, the race detector, the literal value oracles, and the
/// deadlock/livelock detectors — and a DPOR reduction ratio above 1.
#[test]
fn all_protocols_explore_faulty_msg_pass_clean() {
    let prog = program::msg_pass();
    for proto in Protocol::ALL {
        let report = explore(&McConfig::new(proto).with_faults(1), &prog);
        assert!(report.complete, "{proto:?} did not exhaust: {report:?}");
        assert!(report.clean(), "{proto:?} found violations: {report:?}");
        assert_eq!(report.deadlocks, 0, "{proto:?}: {report:?}");
        assert!(
            report.reduction_ratio() > 1.0,
            "{proto:?} ratio {}",
            report.reduction_ratio()
        );
        assert!(report.schedules >= 16, "{proto:?}: {}", report.schedules);
    }
}

/// Clean sweep of the lock-contention program (no faults) on every
/// protocol: lock handoff, notices, diffs/flushes and leases all get
/// schedule-permuted and must stay legal.
#[test]
fn all_protocols_explore_lock_counter_clean() {
    let prog = program::lock_counter(2, 2);
    for proto in Protocol::ALL {
        let report = explore(&McConfig::new(proto), &prog);
        assert!(report.complete && report.clean(), "{proto:?}: {report:?}");
        assert_eq!(report.deadlocks, 0);
    }
}
