//! Mutation kill matrix: every deliberate protocol mutation must be caught
//! by the checker, and the same program must be violation-free without one.
//!
//! Requires the `mutate` feature (the mutation sites are compiled out of
//! production builds):
//!
//! ```text
//! cargo test --features mutate --test mutation_kill
//! ```
//!
//! The driver program is purpose-built to hit every mutation site at least
//! three times (the seeded target occurrence is `roll(..) % 3`): a
//! lock-protected shared-counter phase exercises lock grants, write
//! notices, releases, diffs and SC write-fault fan-out; a barrier-ordered
//! producer/consumer phase gives the race detector a cross-node
//! write-then-read pair ordered only by barriers, with node 0 always on the
//! reading side (the `hb-skip-barrier` mutation is sticky on node 0).

#![cfg(feature = "mutate")]

use std::sync::Arc;

use dsm::core::{Mutation, Violation};
use dsm::proto::{MutFabric, MUTATIONS};
use dsm::{run_parallel, Dsm, DsmProgram, FabricConfig, MemImage, Protocol, RunConfig};

const NODES: usize = 8;
const LOCKS: usize = 3;
const LOCK_ROUNDS: usize = 4;
const PING_ROUNDS: usize = 6;
/// Lock-protected counters live one page apart so each sits in its own
/// block at every granularity.
const CTR_STRIDE: usize = 4096;
const PING_BASE: usize = 16384;
const SEED: u64 = 0xD5;

struct KillApp;

impl DsmProgram for KillApp {
    fn name(&self) -> String {
        "mutkill".into()
    }

    fn shared_bytes(&self) -> usize {
        32 * 1024
    }

    fn init(&self, _mem: &mut MemImage) {}

    fn warmup(&self, d: &mut dyn Dsm) {
        if d.node() == 0 {
            for l in 0..LOCKS {
                d.write_u64(l * CTR_STRIDE, 0);
            }
            for r in 0..PING_ROUNDS {
                d.write_u64(PING_BASE + r * 8, 0);
            }
        }
    }

    fn run(&self, d: &mut dyn Dsm) {
        let n = d.num_nodes();
        let me = d.node();
        // Phase 1: lock-ordered counters. Every increment is a remote
        // read-modify-write: lock grants carry write notices (LRC), each
        // release diffs the dirty block (HLRC) or publishes a bumped
        // version (SW-LRC), and each write fault invalidates sharers (SC).
        for _ in 0..LOCK_ROUNDS {
            for l in 0..LOCKS {
                d.lock(l);
                let a = l * CTR_STRIDE;
                let v = d.read_u64(a);
                // Every byte of the counter changes, so HLRC diffs carry a
                // full 8-byte run (the diff-truncation site needs one).
                d.write_u64(a, v + 0x0101_0101_0101_0101);
                d.unlock(l);
                d.compute(500);
            }
        }
        d.barrier(0);
        // Phase 2: one producer per round, everyone reads after the
        // barrier. The write/read pair is ordered *only* by the barrier,
        // and node 0 is never the producer, so a skipped happens-before
        // join on node 0 must surface as a race.
        for r in 0..PING_ROUNDS {
            let a = PING_BASE + r * 8;
            if me == 1 + r % (n - 1) {
                d.write_u64(a, r as u64 + 1);
            }
            d.barrier(1);
            let _ = d.read_u64(a);
            d.barrier(2);
        }
    }
}

fn run_one(proto: Protocol, fabric: FabricConfig, mutation: Option<Mutation>) -> Vec<Violation> {
    let mut cfg = RunConfig::new(proto, 256)
        .with_nodes(NODES)
        .with_fabric(fabric)
        .with_check();
    if let Some(m) = mutation {
        cfg = cfg.with_mutation(m, SEED);
    }
    run_parallel(&cfg, Arc::new(KillApp)).violations
}

/// A heavily duplicating (but otherwise clean) reliable fabric: real
/// duplicate frames reach the dedup layer, which the `fabric-dup-deliver`
/// mutation then pretends leaked through.
fn dup_fabric() -> FabricConfig {
    FabricConfig::parse("faulty,seed=7,drop=0,dup=200000,reorder=0,spike=0").unwrap()
}

/// A heavily reordering reliable fabric: frames genuinely arrive out of
/// order and are held for in-order release, which the `fabric-reorder`
/// mutation then pretends were released early.
fn reorder_fabric() -> FabricConfig {
    FabricConfig::parse("faulty,seed=7,drop=0,dup=0,reorder=300000,spike=0,jitter=200000").unwrap()
}

fn assert_killed(proto: Protocol, fabric: FabricConfig, m: Mutation, rule: &str) {
    let v = run_one(proto, fabric, Some(m));
    assert!(
        !v.is_empty(),
        "{} under {proto:?} produced no violations at all",
        m.name()
    );
    assert!(
        v.iter().any(|x| x.rule == rule),
        "{} under {proto:?} must be caught by rule {rule}; got {:?}",
        m.name(),
        v.iter().map(|x| x.rule).collect::<Vec<_>>()
    );
}

#[test]
fn clean_runs_have_no_violations() {
    for p in Protocol::ALL {
        let v = run_one(p, FabricConfig::ideal(), None);
        assert!(v.is_empty(), "{p:?} ideal: {v:?}");
    }
    // The checker must also stay quiet when the fabric injects (recovered)
    // faults: dedup and in-order release are working as designed.
    for fabric in [dup_fabric(), reorder_fabric()] {
        let v = run_one(Protocol::Hlrc, fabric, None);
        assert!(v.is_empty(), "faulty-but-recovered fabric: {v:?}");
    }
}

/// Every registry row dies under its canonical (protocol, fabric) setup.
/// The row data — which rule catches which mutation, and which fabric is
/// needed to reach the site — lives in [`MUTATIONS`], shared with the
/// model checker's exhaustive kill matrix (`tests/mc_exhaustive_kill.rs`).
#[test]
fn kill_matrix_from_registry() {
    for spec in MUTATIONS.iter() {
        let fabric = match spec.fabric {
            MutFabric::Ideal => FabricConfig::ideal(),
            MutFabric::Dup => dup_fabric(),
            MutFabric::Reorder => reorder_fabric(),
        };
        assert_killed(spec.protocol, fabric, spec.mutation, spec.rule);
    }
}

/// The same mutations under the *other* LRC protocol still register: the
/// kill matrix is not an artifact of one protocol's timing.
#[test]
fn kill_matrix_cross_protocol_spot_checks() {
    assert_killed(
        Protocol::SwLrc,
        FabricConfig::ideal(),
        Mutation::DropWriteNotice,
        "lrc-notice-completeness",
    );
    assert_killed(
        Protocol::SwLrc,
        FabricConfig::ideal(),
        Mutation::LockStaleVt,
        "lrc-lock-stale-vt",
    );
    assert_killed(
        Protocol::Hlrc,
        FabricConfig::ideal(),
        Mutation::HbSkipBarrier,
        "hb-race",
    );
}
