//! Invariant tests for the observability layer: the per-node execution-time
//! breakdown must partition each node's measured virtual wall time, the
//! event stream must agree with the protocol counters, and both exporters
//! must produce valid output.

use dsm::{run_experiment, Protocol, RunConfig};
use dsm_apps::registry::{app_sized, AppSize};
use dsm_json::Value;
use dsm_obs::{chrome_trace, jsonl_metrics, EventKind, TimeBreakdown};

/// Run one (app, protocol) cell with recording on and check every
/// observability invariant.
fn check_cell(app: &str, p: Protocol, block: usize) {
    let program = app_sized(app, AppSize::Small).unwrap();
    let cfg = RunConfig::new(p, block).with_recording();
    let nodes = cfg.nodes;
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok(), "{app} {p:?}@{block}: {:?}", r.check);
    assert!(
        r.obs.recorded,
        "{app} {p:?}@{block}: recording was requested"
    );
    assert_eq!(r.obs.nodes.len(), nodes);

    for (i, (obs, c)) in r.obs.nodes.iter().zip(&r.stats.per_node).enumerate() {
        // Breakdown components partition the node's measured wall time
        // (within 1% to absorb rounding at component boundaries).
        let wall = obs.wall_ns();
        assert!(
            wall > 0,
            "{app} {p:?}@{block} node {i}: empty measured region"
        );
        let b = TimeBreakdown::from_counters(c, wall);
        let residual = b.residual_ns().unsigned_abs();
        assert!(
            residual <= wall / 100,
            "{app} {p:?}@{block} node {i}: wall {wall} != accounted {} \
             (residual {residual})\n{}",
            b.accounted_ns(),
            b.render(),
        );
        // The event stream agrees with the protocol counters: every sent
        // message produced exactly one MsgSend event (counts are immune to
        // ring overflow, so this is exact).
        assert_eq!(
            obs.counts[EventKind::IDX_MSG_SEND],
            c.msgs_sent,
            "{app} {p:?}@{block} node {i}: MsgSend events != msgs_sent",
        );
    }

    // The run produced events worth exporting (any app at small block sizes
    // communicates), and the fault histogram agrees with the fault counter.
    let total_sends: u64 = r
        .obs
        .nodes
        .iter()
        .map(|n| n.counts[EventKind::IDX_MSG_SEND])
        .sum();
    assert!(total_sends > 0, "{app} {p:?}@{block}: no messages recorded");

    // Chrome trace: valid JSON, every record carries ph/pid/name, timed
    // records carry ts/tid, and each node got its own track.
    let trace = chrome_trace(&r.obs);
    let v = Value::parse(&trace).expect("chrome trace must be valid JSON");
    let events = v.get("traceEvents").unwrap().as_arr().unwrap();
    let mut tids = std::collections::BTreeSet::new();
    for ev in events {
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(ev.get("pid").unwrap().as_u64().is_some());
        assert!(ev.get("name").unwrap().as_str().is_some());
        if ph != "M" {
            assert!(ev.get("ts").unwrap().as_f64().is_some());
            tids.insert(ev.u64_field("tid").unwrap());
        }
    }
    let expect: std::collections::BTreeSet<u64> = (0..nodes as u64).collect();
    assert_eq!(
        tids, expect,
        "{app} {p:?}@{block}: one trace track per node"
    );

    // JSONL metrics: every line parses, one node record per node plus the
    // run record, and the run record's speedup matches the stats.
    let metrics = jsonl_metrics(&r.obs, &r.stats);
    let lines: Vec<Value> = metrics
        .lines()
        .map(|l| Value::parse(l).expect("each JSONL line must parse"))
        .collect();
    assert_eq!(lines.len(), nodes + 1);
    for (i, line) in lines.iter().take(nodes).enumerate() {
        assert_eq!(line.get("type").unwrap().as_str(), Some("node"));
        assert_eq!(line.u64_field("node"), Some(i as u64));
        assert_eq!(
            line.get("breakdown").unwrap().u64_field("wall_ns"),
            Some(r.obs.nodes[i].wall_ns()),
        );
    }
    let run = &lines[nodes];
    assert_eq!(run.get("type").unwrap().as_str(), Some("run"));
    assert_eq!(
        run.u64_field("parallel_time_ns"),
        Some(r.stats.parallel_time_ns)
    );
}

#[test]
fn breakdown_partitions_wall_time_lu() {
    for p in Protocol::ALL {
        check_cell("lu", p, 1024);
    }
}

#[test]
fn breakdown_partitions_wall_time_fft() {
    for p in Protocol::ALL {
        check_cell("fft", p, 1024);
    }
}

#[test]
fn breakdown_partitions_wall_time_barnes_original() {
    // 64-byte blocks: Barnes-Original's false sharing makes the larger
    // granularities much slower to simulate (the paper's point).
    for p in Protocol::ALL {
        check_cell("barnes-original", p, 64);
    }
}

/// A disabled recorder stays disabled end to end: no events stored, but the
/// wall-clock bracketing still feeds the time breakdown.
#[test]
fn default_config_records_no_events() {
    let program = app_sized("lu", AppSize::Small).unwrap();
    let cfg = RunConfig::new(Protocol::Hlrc, 1024);
    let r = run_experiment(&cfg, program);
    assert!(r.check.is_ok());
    assert!(!r.obs.recorded);
    for (obs, c) in r.obs.nodes.iter().zip(&r.stats.per_node) {
        assert!(obs.events.is_empty());
        assert_eq!(obs.counts, [0; EventKind::COUNT]);
        // Bracketing works even without event recording.
        let b = TimeBreakdown::from_counters(c, obs.wall_ns());
        assert!(b.residual_ns().unsigned_abs() <= b.wall_ns / 100);
    }
}
