//! Property test: randomly generated data-race-free programs produce the
//! sequential result under every protocol and granularity.
//!
//! The generator builds phase-structured programs: in each phase every word
//! has exactly one writer (derived from the seed), writers read words
//! written in the previous phase to compute their values (so data really
//! flows through the protocols), phases are separated by barriers, and a
//! sprinkle of lock-protected counters exercises the lock path. Any
//! protocol bug that loses, reorders, or mixes writes shows up as a wrong
//! final image.

use std::sync::Arc;

use dsm::{
    run_experiment, run_parallel, Dsm, DsmProgram, FabricConfig, MemImage, Protocol, RunConfig,
};
use dsm_apps::util::XorShift;

#[derive(Debug, Clone)]
struct RandomDrf {
    seed: u64,
    words: usize,
    phases: usize,
    locks: usize,
}

impl RandomDrf {
    fn writer_of(&self, word: usize, phase: usize) -> usize {
        // Deterministic pseudo-random assignment, same for all nodes.
        let mut x =
            XorShift::new(self.seed ^ (word as u64).wrapping_mul(0x9E37) ^ (phase as u64) << 32);
        x.below(16)
    }
}

/// Double-buffered variant of the generated program: each phase reads one
/// buffer and writes the other, so no word is read while its phase-writer
/// updates it. Reads between barriers of concurrently-written words would
/// be data races that release consistency may legitimately resolve
/// differently from the sequential run; double buffering keeps the program
/// properly data-race-free while data still flows across nodes every phase.
#[derive(Debug, Clone)]
struct RandomDrfBuffered(RandomDrf);

impl RandomDrfBuffered {
    fn src_addr(&self, phase: usize, w: usize) -> usize {
        // Even phases read buffer 0 / write buffer 1; odd phases reverse.
        let buf = phase % 2;
        (buf * self.0.words + w) * 8
    }
    fn dst_addr(&self, phase: usize, w: usize) -> usize {
        let buf = 1 - phase % 2;
        (buf * self.0.words + w) * 8
    }
    fn counter_addr(&self, l: usize) -> usize {
        (2 * self.0.words + l) * 8
    }
}

impl DsmProgram for RandomDrfBuffered {
    fn name(&self) -> String {
        format!("random-drf-buf-{:x}", self.0.seed)
    }

    fn shared_bytes(&self) -> usize {
        (2 * self.0.words + self.0.locks) * 8
    }

    fn init(&self, mem: &mut MemImage) {
        let mut rng = XorShift::new(self.0.seed);
        for w in 0..2 * self.0.words {
            mem.write_u64(w * 8, rng.next_u64() >> 8);
        }
    }

    fn run(&self, d: &mut dyn Dsm) {
        let (me, p) = (d.node(), d.num_nodes());
        let inner = &self.0;
        for phase in 0..inner.phases {
            for w in 0..inner.words {
                if inner.writer_of(w, phase) % p != me {
                    continue;
                }
                let a = d.read_u64(self.src_addr(phase, (w * 7 + phase) % inner.words));
                let b = d.read_u64(self.src_addr(phase, (w * 13 + 5) % inner.words));
                let cur = d.read_u64(self.src_addr(phase, w));
                d.write_u64(
                    self.dst_addr(phase, w),
                    cur.wrapping_mul(6364136223846793005)
                        .wrapping_add(a ^ b.rotate_left(17))
                        .wrapping_add(phase as u64),
                );
                d.compute(300);
            }
            // Lock-protected counters: the bump assignment is node-count
            // invariant (the same canonical 16 slots are folded onto
            // however many nodes run), so sequential and parallel runs do
            // identical total work.
            for slot in 0..16 {
                if slot % p != me {
                    continue;
                }
                for l in 0..inner.locks {
                    if inner.writer_of(1000 + l, phase) == slot {
                        d.lock(l);
                        let c = d.read_u64(self.counter_addr(l));
                        d.write_u64(self.counter_addr(l), c + 1);
                        d.unlock(l);
                    }
                }
            }
            d.barrier(0);
        }
    }

    fn check(&self, seq: &MemImage, par: &MemImage) -> Result<(), String> {
        for w in 0..2 * self.0.words {
            let (s, p) = (seq.read_u64(w * 8), par.read_u64(w * 8));
            if s != p {
                return Err(format!("word {w}: {s:#x} != {p:#x}"));
            }
        }
        for l in 0..self.0.locks {
            let (s, p) = (
                seq.read_u64(self.counter_addr(l)),
                par.read_u64(self.counter_addr(l)),
            );
            if s != p {
                return Err(format!("counter {l}: {s} != {p}"));
            }
        }
        Ok(())
    }
}

#[test]
fn random_drf_programs_verify_everywhere() {
    // Seeded generator (fixed seed, 12 cases) standing in for a property
    // test: each case draws program shape, protocol, and granularity.
    let mut rng = XorShift::new(0xD5A2_7F03_11C9_6E84);
    for case in 0..12 {
        let seed = rng.next_u64();
        let words = 32 + rng.below(128);
        let phases = 2 + rng.below(4);
        let locks = rng.below(4);
        let protocol = Protocol::ALL[rng.below(3)];
        let block = [64usize, 256, 1024, 4096][rng.below(4)];
        let program = RandomDrfBuffered(RandomDrf {
            seed,
            words,
            phases,
            locks,
        });
        let r = run_experiment(&RunConfig::new(protocol, block), Arc::new(program));
        assert!(
            r.check.is_ok(),
            "case {case}: seed {seed:#x} {protocol:?}@{block}: {:?}",
            r.check
        );
    }
}

#[test]
fn random_drf_programs_survive_fault_injection() {
    // Under a seeded fault schedule (drops, duplicates, reordering, delay
    // spikes) with a sufficient retry budget, every protocol must still
    // produce exactly the fault-free final image: retransmission plus the
    // receive-side dedup/reassembly make the lossy fabric invisible to the
    // protocol layer.
    let mut rng = XorShift::new(0x6B1C_43E9_0A77_52DF);
    for case in 0..6 {
        let seed = rng.next_u64();
        let words = 32 + rng.below(96);
        let phases = 2 + rng.below(3);
        let locks = rng.below(4);
        let protocol = Protocol::ALL[case % 3];
        let block = [64usize, 256, 1024, 4096][rng.below(4)];
        let program = RandomDrfBuffered(RandomDrf {
            seed,
            words,
            phases,
            locks,
        });
        let clean = run_parallel(&RunConfig::new(protocol, block), Arc::new(program.clone()));
        let faulty = run_parallel(
            &RunConfig::new(protocol, block).with_fabric(FabricConfig::faulty(seed ^ 0xF0F0)),
            Arc::new(program),
        );
        assert_eq!(
            clean.image.bytes(),
            faulty.image.bytes(),
            "case {case}: seed {seed:#x} {protocol:?}@{block}: faulty image diverged"
        );
        let t = faulty.stats.totals();
        assert!(t.fabric_frames > 0, "case {case}: fabric never engaged");
    }
}
