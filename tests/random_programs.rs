//! Property test: randomly generated data-race-free programs produce the
//! sequential result under every protocol and granularity.
//!
//! The generator itself ([`dsm_apps::RandomDrf`]) is a first-class
//! workload in `crates/apps` (the scenario engine runs it from JSON
//! plans); this suite drives it across random shapes, protocols, and
//! granularities, and under fault injection.

use std::sync::Arc;

use dsm::{run_experiment, run_parallel, FabricConfig, Protocol, RunConfig};
use dsm_apps::util::XorShift;
use dsm_apps::RandomDrf;

#[test]
fn random_drf_programs_verify_everywhere() {
    // Seeded generator (fixed seed, 12 cases) standing in for a property
    // test: each case draws program shape, protocol, and granularity.
    let mut rng = XorShift::new(0xD5A2_7F03_11C9_6E84);
    for case in 0..12 {
        let seed = rng.next_u64();
        let words = 32 + rng.below(128);
        let phases = 2 + rng.below(4);
        let locks = rng.below(4);
        let protocol = Protocol::ALL[rng.below(Protocol::ALL.len())];
        let block = [64usize, 256, 1024, 4096][rng.below(4)];
        let program = RandomDrf::new(seed, words, phases, locks);
        let r = run_experiment(&RunConfig::new(protocol, block), Arc::new(program));
        assert!(
            r.check.is_ok(),
            "case {case}: seed {seed:#x} {protocol:?}@{block}: {:?}",
            r.check
        );
    }
}

#[test]
fn random_drf_generator_is_seed_deterministic() {
    // The same shape must produce byte-identical parallel runs — the
    // scenario engine's reproducibility guarantee leans on this.
    let mk = || Arc::new(RandomDrf::new(0x5EED_CAFE, 96, 4, 3));
    let cfg = RunConfig::new(Protocol::Hlrc, 1024);
    let a = run_parallel(&cfg, mk());
    let b = run_parallel(&cfg, mk());
    assert_eq!(a.image.bytes(), b.image.bytes());
    assert_eq!(a.stats.parallel_time_ns, b.stats.parallel_time_ns);
    assert_eq!(
        a.stats.totals().msgs_sent,
        b.stats.totals().msgs_sent,
        "identical seeds must replay identical protocol traffic"
    );
    // A different seed must actually change the program.
    let c = run_parallel(&cfg, Arc::new(RandomDrf::new(0x5EED_CAFF, 96, 4, 3)));
    assert_ne!(a.image.bytes(), c.image.bytes());
}

#[test]
fn random_drf_programs_survive_fault_injection() {
    // Under a seeded fault schedule (drops, duplicates, reordering, delay
    // spikes) with a sufficient retry budget, every protocol must still
    // produce exactly the fault-free final image: retransmission plus the
    // receive-side dedup/reassembly make the lossy fabric invisible to the
    // protocol layer.
    let mut rng = XorShift::new(0x6B1C_43E9_0A77_52DF);
    for case in 0..6 {
        let seed = rng.next_u64();
        let words = 32 + rng.below(96);
        let phases = 2 + rng.below(3);
        let locks = rng.below(4);
        let protocol = Protocol::ALL[case % Protocol::ALL.len()];
        let block = [64usize, 256, 1024, 4096][rng.below(4)];
        let program = RandomDrf::new(seed, words, phases, locks);
        let clean = run_parallel(&RunConfig::new(protocol, block), Arc::new(program.clone()));
        let faulty = run_parallel(
            &RunConfig::new(protocol, block).with_fabric(FabricConfig::faulty(seed ^ 0xF0F0)),
            Arc::new(program),
        );
        assert_eq!(
            clean.image.bytes(),
            faulty.image.bytes(),
            "case {case}: seed {seed:#x} {protocol:?}@{block}: faulty image diverged"
        );
        let t = faulty.stats.totals();
        assert!(t.fabric_frames > 0, "case {case}: fabric never engaged");
    }
}
