//! The three modern workload families (Zipfian KV store, PageRank graph
//! kernel, random-DRF generator) must behave like the twelve kernels:
//! verify against their sequential runs and stay clean under the race
//! detector + invariant checker, on every protocol at multiple
//! granularities.

use std::sync::Arc;

use dsm::{run_checked, run_parallel, Protocol, RunConfig};
use dsm_apps::{app_sized, modern_app_names, AppSize, KvZipf, PageRank};

/// Granularities exercised per protocol: the coarsest (pages) and a fine
/// one, which together cover both false-sharing and fragmentation regimes.
const BLOCKS: [usize; 2] = [4096, 256];

#[test]
fn modern_apps_run_clean_under_checker_everywhere() {
    for name in modern_app_names() {
        let program = app_sized(name, AppSize::Small).unwrap();
        for protocol in Protocol::ALL {
            for block in BLOCKS {
                let cfg = RunConfig::new(protocol, block).with_check();
                // run_checked panics on an image mismatch or any checker
                // violation — races included.
                let r = run_checked(&cfg, Arc::clone(&program));
                assert!(
                    r.stats.totals().msgs_sent > 0,
                    "{name} {protocol:?}@{block}: no protocol traffic — workload degenerate"
                );
            }
        }
    }
}

#[test]
fn kv_zipf_fine_grain_sc_is_invariant_clean() {
    // Regression: a write transaction that invalidated the home's copy
    // locally used to skip the grant poisoning that remote sharers get via
    // ScInval, so the home's own in-flight read self-grant could install a
    // stale read copy under the new exclusive owner (the checker flagged it
    // as "sc-exclusive-with-readers"). The contended KV store at SC@64
    // reproduces that interleaving; run_checked panics on any violation.
    let program: dsm::Program = Arc::new(KvZipf::new(5, 256, 3_000, 3, 99, 70));
    run_checked(&RunConfig::new(Protocol::Sc, 64).with_check(), program);
}

#[test]
fn kv_hot_migration_changes_sharing_but_not_results() {
    // With migration (epochs > 1) vs a single epoch: same final image by
    // construction is NOT expected (op streams differ in epoch count only
    // when the per-epoch split changes rounding), so compare a fixed shape
    // against itself across cluster sizes instead: the store's final image
    // must be node-count invariant (commutative updates + ownership-
    // partitioned execution).
    let mk = || Arc::new(KvZipf::new(7, 256, 4_000, 4, 99, 60));
    let base = run_parallel(&RunConfig::new(Protocol::Hlrc, 1024), mk());
    for nodes in [4usize, 8] {
        let r = run_parallel(
            &RunConfig::new(Protocol::Hlrc, 1024).with_nodes(nodes),
            mk(),
        );
        assert_eq!(
            base.image.bytes(),
            r.image.bytes(),
            "{nodes}-node image diverged from 16-node image"
        );
    }
}

#[test]
fn kv_zipf_skew_shows_up_in_access_counts() {
    // After a run, the count table must reflect the Zipfian skew: the
    // hottest key absorbs far more writes than the median key.
    let kv = KvZipf::new(3, 256, 6_000, 3, 99, 40);
    let out = run_parallel(&RunConfig::new(Protocol::Sc, 1024), Arc::new(kv.clone()));
    let counts: Vec<u64> = (0..kv.keys)
        .map(|k| out.image.read_u64(kv.counts_base() + k * 8))
        .collect();
    let max = *counts.iter().max().unwrap();
    let mut sorted = counts.clone();
    sorted.sort_unstable();
    let median = sorted[kv.keys / 2];
    assert!(
        max >= 10 * median.max(1),
        "no skew: max {max}, median {median}"
    );
}

#[test]
fn pagerank_is_bit_identical_across_cluster_sizes() {
    // Fixed per-vertex summation order makes the FP result exactly
    // reproducible no matter how vertices are partitioned.
    let mk = || Arc::new(PageRank::new(5, 96, 4, 3));
    let base = run_parallel(&RunConfig::new(Protocol::SwLrc, 1024), mk());
    for nodes in [2usize, 5] {
        let r = run_parallel(
            &RunConfig::new(Protocol::SwLrc, 1024).with_nodes(nodes),
            mk(),
        );
        assert_eq!(base.image.bytes(), r.image.bytes());
    }
}

#[test]
fn modern_apps_region_hints_drive_mixed_mode() {
    // Every modern app declares regions; running each with a
    // heterogeneous per-region policy must still verify.
    use dsm::RegionPolicy;
    for (name, region) in [
        ("kv-zipf", "values"),
        ("pagerank", "graph"),
        ("random-drf", "buf0"),
    ] {
        let program = app_sized(name, AppSize::Small).unwrap();
        let cfg = RunConfig::new(Protocol::Hlrc, 1024)
            .with_region_policies(vec![RegionPolicy::new(region, Protocol::Sc, 256)]);
        run_checked(&cfg, program);
    }
}
