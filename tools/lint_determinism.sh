#!/usr/bin/env bash
# Determinism lint for the hot-path crates (sim, proto, fabric, mc).
#
# The whole stack depends on bit-identical replay: the engine's state
# hashes, the model checker's replay-based exploration, and the golden
# tests all assume a run is a pure function of its inputs. Two construct
# families break that silently:
#
#   1. Wall-clock time (SystemTime::now / Instant::now) — never legal in
#      these crates; virtual time comes from the engine. No allowlist.
#   2. HashMap/HashSet — iteration order varies per process (SipHash
#      keying), so any iteration that feeds results, digests, or message
#      order is nondeterministic. Files where every use is provably
#      order-insensitive (XOR-folded digests, keyed lookup, membership
#      tests) are listed in tools/lint_determinism_allow.txt with a
#      justification; everything else fails.
#
# Comment lines are ignored. Run from anywhere; CI runs it on every push.

set -u
cd "$(dirname "$0")/.."

DIRS="crates/sim/src crates/proto/src crates/fabric/src crates/mc/src"
ALLOW="tools/lint_determinism_allow.txt"
status=0

# Print "file:lineno:text" matches for an extended regex, with lines whose
# code part is a // comment filtered out.
matches() {
  grep -rn --include='*.rs' -E "$1" $DIRS 2>/dev/null |
    awk -F':' '{
      text = $0
      sub(/^[^:]*:[^:]*:/, "", text)
      sub(/^[[:space:]]*/, "", text)
      if (text !~ /^\/\//) print $0
    }'
}

hits=$(matches 'SystemTime::now|Instant::now')
if [ -n "$hits" ]; then
  echo "$hits"
  echo "lint_determinism: wall-clock time in a deterministic crate (no allowlist for this rule)"
  status=1
fi

hits=$(matches '\bHashMap\b|\bHashSet\b')
if [ -n "$hits" ]; then
  allowed=$(grep -v '^#' "$ALLOW" 2>/dev/null | sed 's/[[:space:]]*$//' | grep -v '^$')
  while IFS= read -r hit; do
    file=${hit%%:*}
    if ! printf '%s\n' "$allowed" | grep -qFx "$file"; then
      echo "$hit"
      echo "lint_determinism: $file uses HashMap/HashSet but is not in $ALLOW"
      status=1
    fi
  done <<<"$hits"
fi

if [ "$status" -eq 0 ]; then
  echo "lint_determinism: OK"
fi
exit "$status"
